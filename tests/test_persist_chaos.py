"""Kill-recovery chaos suite for the persistent artifact store.

The invariant every test here drives at: a store that has been SIGKILLed
mid-write, truncated at an arbitrary byte, or bit-flipped at a seeded
offset restarts *warm where possible, cold where not* — and in every
case the answers served afterwards are exactly the answers a store-less
run produces.  Corruption may cost recompilation; it must never cost
correctness.

All randomness is seeded (the same three fixed seeds the CI
``persist-smoke`` job replays), so any failure reproduces byte for
byte.
"""

from __future__ import annotations

import asyncio
import os
import random
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

_SRC = str(Path(__file__).resolve().parent.parent / "src")

from repro import faultinject
from repro.core.pipeline import SolverPipeline, StructureCache
from repro.csp.generators import random_schaefer_target, random_structure
from repro.exceptions import ServiceClosedError, SolveTimeoutError
from repro.faultinject import FaultPlan
from repro.persist import ArtifactStore
from repro.persist import format as sformat
from repro.service import ServiceConfig, SolveService
from repro.structures.graphs import clique, random_graph
from repro.structures.vocabulary import Vocabulary

BINARY = Vocabulary.from_arities({"R": 2})

#: Replayed by the CI persist-smoke job.
FIXED_SEEDS = (17, 29, 43)

CHAOS_TIMEOUT = 120.0


def _corpus(count: int = 8):
    """Small deterministic instances covering sat and unsat routes."""
    instances = [
        (
            random_structure(BINARY, 5, 8, seed=seed),
            random_schaefer_target(BINARY, 3, "horn", seed=seed + 1),
        )
        for seed in range(count - 2)
    ]
    instances.append((clique(3), random_graph(8, 0.7, seed=5)))
    instances.append((clique(4), clique(3)))
    return instances


def _expected(corpus):
    """Ground truth from a fault-free, store-less pipeline."""
    assert faultinject.current() is None
    pipeline = SolverPipeline(cache=StructureCache())
    return [
        pipeline.solve(source, target).exists for source, target in corpus
    ]


def _populate(store_dir, corpus) -> None:
    """One clean writer generation filling the store."""
    with ArtifactStore(store_dir) as store:
        pipeline = SolverPipeline(cache=StructureCache(store=store))
        for source, target in corpus:
            pipeline.solve(source, target)
        store.flush()


def _assert_parity(store_dir, corpus, expected, *, mode="rw") -> None:
    """Solving through the (possibly damaged) store matches store-less."""
    store = ArtifactStore(store_dir, mode=mode)
    try:
        pipeline = SolverPipeline(cache=StructureCache(store=store))
        for (source, target), truth in zip(corpus, expected):
            assert pipeline.solve(source, target).exists == truth
    finally:
        store.close()


# ---------------------------------------------------------------------------
# SIGKILL the writer mid-append
# ---------------------------------------------------------------------------

_WRITER_SCRIPT = textwrap.dedent(
    """
    import sys

    from repro.core.pipeline import SolverPipeline, StructureCache
    from repro.csp.generators import random_schaefer_target, random_structure
    from repro.persist import ArtifactStore
    from repro.structures.graphs import clique, random_graph
    from repro.structures.vocabulary import Vocabulary

    BINARY = Vocabulary.from_arities({"R": 2})
    store = ArtifactStore(sys.argv[1])
    pipeline = SolverPipeline(cache=StructureCache(store=store))
    # An endless stream of distinct instances: every solve appends fresh
    # artifacts, so the parent's SIGKILL lands while records are being
    # written.  Never flushes, never closes — the crash is the exit.
    seed = 0
    while True:
        source = random_structure(BINARY, 5, 8, seed=seed)
        target = random_schaefer_target(BINARY, 3, "horn", seed=seed + 1)
        pipeline.solve(source, target)
        print(f"PUT {store.stats.appends}", flush=True)
        seed += 2
    """
)


class TestWriterKill:
    @pytest.mark.parametrize("seed", FIXED_SEEDS)
    def test_sigkill_mid_append_recovers(self, seed, tmp_path):
        """SIGKILL the writer while it appends; the survivor prefix serves."""
        store_dir = tmp_path / "store"
        rng = random.Random(seed)
        kill_after = rng.randint(2, 6)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [_SRC, env.get("PYTHONPATH", "")])
        )
        child = subprocess.Popen(
            [sys.executable, "-c", _WRITER_SCRIPT, str(store_dir)],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            appended = 0
            deadline = time.monotonic() + CHAOS_TIMEOUT
            while appended < kill_after:
                line = child.stdout.readline()
                assert line, "writer died before reaching the kill point"
                assert time.monotonic() < deadline
                if line.startswith("PUT"):
                    appended = int(line.split()[1])
            child.kill()  # SIGKILL: no atexit, no flush, no lock release path
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()
        # The kernel released the dead writer's flock: a new writer opens.
        store = ArtifactStore(store_dir)
        # Warm where possible: acknowledged records survived the kill
        # (puts flush to the page cache) and every one verifies.
        assert len(store) >= 1
        for kind, key in store.keys():
            assert store.get(kind, key) is not None, (kind, key)
        assert store.stats.hits == len(store.keys())
        store.close()
        # And the recovered store serves exact answers.
        corpus = _corpus()
        _assert_parity(store_dir, corpus, _expected(corpus))


# ---------------------------------------------------------------------------
# Seeded truncation and corruption
# ---------------------------------------------------------------------------


class TestSeededDamage:
    @pytest.mark.parametrize("seed", FIXED_SEEDS)
    def test_truncation_at_seeded_offset(self, seed, tmp_path):
        """Chop the log at an arbitrary seeded byte: warm prefix, parity."""
        corpus = _corpus()
        expected = _expected(corpus)
        store_dir = tmp_path / "store"
        _populate(store_dir, corpus)
        log_path = os.path.join(store_dir, ArtifactStore.LOG_NAME)
        size = os.path.getsize(log_path)
        rng = random.Random(seed)
        cut = rng.randrange(sformat.HEADER_SIZE + 1, size)
        with open(log_path, "r+b") as fh:
            fh.truncate(cut)
        store = ArtifactStore(store_dir)
        # Recovery never trusts past the damage; whatever is indexed
        # verifies on read.
        for kind, key in store.keys():
            assert store.get(kind, key) is not None
        assert store.size_bytes() <= cut
        store.close()
        _assert_parity(store_dir, corpus, expected)

    @pytest.mark.parametrize("seed", FIXED_SEEDS)
    def test_bit_flip_at_seeded_offset(self, seed, tmp_path):
        """Flip one bit somewhere in the record region: never served."""
        corpus = _corpus()
        expected = _expected(corpus)
        store_dir = tmp_path / "store"
        _populate(store_dir, corpus)
        log_path = os.path.join(store_dir, ArtifactStore.LOG_NAME)
        size = os.path.getsize(log_path)
        rng = random.Random(seed)
        offset = rng.randrange(sformat.HEADER_SIZE, size)
        bit = 1 << rng.randrange(8)
        with open(log_path, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)[0]
            fh.seek(offset)
            fh.write(bytes([byte ^ bit]))
        from repro.obs.recorder import FlightRecorder

        recorder = FlightRecorder()
        store = ArtifactStore(
            store_dir, recorder=recorder, register_metrics=False
        )
        assert store.stats.corrupt_records == 1
        assert recorder.counts().get("store.corrupt", 0) >= 1
        assert os.path.isdir(store.quarantine_path)
        assert os.listdir(store.quarantine_path)
        for kind, key in store.keys():
            assert store.get(kind, key) is not None
        store.close()
        _assert_parity(store_dir, corpus, expected)

    def test_total_garbage_log_serves_cold(self, tmp_path):
        """Even a fully garbage log degrades to an empty (cold) store."""
        corpus = _corpus(4)
        expected = _expected(corpus)
        store_dir = tmp_path / "store"
        os.makedirs(store_dir)
        with open(os.path.join(store_dir, ArtifactStore.LOG_NAME), "wb") as fh:
            fh.write(os.urandom(512))
        store = ArtifactStore(store_dir)
        assert len(store) == 0
        assert store.stats.corrupt_records == 1
        store.close()
        _assert_parity(store_dir, corpus, expected)


# ---------------------------------------------------------------------------
# Warm restarts through the service
# ---------------------------------------------------------------------------


class TestWarmRestart:
    def test_second_generation_serves_without_recompiling(self, tmp_path):
        """The headline property: a known fingerprint after restart is
        served from the store — zero target compilations, visible both in
        the per-solve kernel counters and the store-hit telemetry."""
        corpus = _corpus(6)
        expected = _expected(corpus)
        store_dir = tmp_path / "store"
        config = ServiceConfig(process_workers=0, store_path=str(store_dir))

        async def generation_one():
            async with SolveService(config) as service:
                for (source, target), truth in zip(corpus, expected):
                    solution = await service.submit(source, target)
                    assert solution.exists == truth

        async def generation_two():
            async with SolveService(config) as service:
                assert service.store is not None
                warmed = service.store.stats.warmed
                assert warmed >= 1
                hits_before = service.store.stats.hits
                compiles = 0
                for (source, target), truth in zip(corpus, expected):
                    solution = await service.submit(source, target)
                    assert solution.exists == truth
                    kernel = solution.stats.kernel or {}
                    compiles += kernel.get("compile.targets", 0)
                # Zero recompilation: every target decoded, none rebuilt.
                assert compiles == 0
                # Warm-up itself read (and verified) stored records.
                assert service.store.stats.hits >= hits_before
                counts = service.recorder.counts()
                assert counts.get("store.warm") == 1
                # Store telemetry rides the service's exposition.
                assert "repro_store_hits_total" in service.exposition()

        asyncio.run(asyncio.wait_for(generation_one(), CHAOS_TIMEOUT))
        # Fresh structure objects so nothing survives in process memos.
        corpus = _corpus(6)
        asyncio.run(asyncio.wait_for(generation_two(), CHAOS_TIMEOUT))

    def test_respawned_workers_reopen_the_store(self, tmp_path):
        """Workers killed mid-storm respawn against the same store and
        keep answering correctly (the worker side opens read-only)."""
        corpus = _corpus(6)
        expected = _expected(corpus)
        store_dir = tmp_path / "store"
        _populate(store_dir, corpus)
        plan = FaultPlan(FIXED_SEEDS[0], {"worker.kill.before": 0.2})
        config = ServiceConfig(
            thread_workers=2,
            process_workers=2,
            process_cost_threshold=0.0,
            retry_budget=3,
            store_path=str(store_dir),
        )

        async def scenario():
            async with SolveService(config) as service:
                waiters = [
                    service.submit(source, target)
                    for source, target in corpus * 2
                ]
                results = await asyncio.gather(
                    *waiters, return_exceptions=True
                )
                for index, result in enumerate(results):
                    if isinstance(result, BaseException):
                        continue  # typed failure paths are test_chaos's job
                    assert result.exists == expected[index % len(corpus)]

        faultinject.install(plan, env=True)
        try:
            asyncio.run(asyncio.wait_for(scenario(), CHAOS_TIMEOUT))
        finally:
            faultinject.uninstall()

    def test_locked_store_degrades_to_storeless_service(self, tmp_path):
        """A second service against a locked store runs store-less."""
        store_dir = tmp_path / "store"
        holder = ArtifactStore(store_dir)
        corpus = _corpus(3)
        expected = _expected(corpus)
        config = ServiceConfig(process_workers=0, store_path=str(store_dir))

        async def scenario():
            async with SolveService(config) as service:
                assert service.store is None
                for (source, target), truth in zip(corpus, expected):
                    solution = await service.submit(source, target)
                    assert solution.exists == truth

        try:
            asyncio.run(asyncio.wait_for(scenario(), CHAOS_TIMEOUT))
        finally:
            holder.close()


# ---------------------------------------------------------------------------
# Graceful drain
# ---------------------------------------------------------------------------


class TestDrain:
    def test_drain_finishes_open_work(self, tmp_path):
        corpus = _corpus(4)
        expected = _expected(corpus)
        store_dir = tmp_path / "store"
        config = ServiceConfig(process_workers=0, store_path=str(store_dir))

        async def scenario():
            service = SolveService(config)
            await service.start()
            waiters = [
                service.submit(source, target) for source, target in corpus
            ]
            clean = await service.drain(timeout=30.0)
            assert clean
            results = await asyncio.gather(*waiters)
            for result, truth in zip(results, expected):
                assert result.exists == truth
            # Admission is closed and the store is flushed + released.
            assert not service.running
            assert service.store is None
            with pytest.raises(ServiceClosedError):
                service.submit(*corpus[0])
            counts = service.recorder.counts()
            assert counts.get("service.drain") == 1
            assert counts.get("store.flush", 0) >= 1

        asyncio.run(asyncio.wait_for(scenario(), CHAOS_TIMEOUT))
        # A later generation can take the writer lock immediately.
        ArtifactStore(store_dir).close()

    def test_drain_deadline_cancels_stragglers(self, tmp_path):
        """A solve slower than the grace period is cut cooperatively."""
        store_dir = tmp_path / "store"
        config = ServiceConfig(process_workers=0, store_path=str(store_dir))
        source, target = clique(7), random_graph(26, 0.55, seed=2)

        async def scenario():
            service = SolveService(config)
            await service.start()
            waiter = service.submit(source, target)
            await asyncio.sleep(0.05)  # let the solve start grinding
            clean = await service.drain(timeout=0.01)
            assert not clean
            with pytest.raises(SolveTimeoutError):
                await waiter
            assert not service.running
            assert service.store is None
            counts = service.recorder.counts()
            assert counts.get("service.drain") == 1
            assert counts.get("service.drain.expired") == 1

        asyncio.run(asyncio.wait_for(scenario(), CHAOS_TIMEOUT))

    def test_drain_idempotent_and_stopless(self):
        async def scenario():
            service = SolveService(ServiceConfig(process_workers=0))
            await service.start()
            assert await service.drain(timeout=1.0)
            assert await service.drain(timeout=1.0)  # second call no-ops
            await service.stop()  # stop after drain is harmless

        asyncio.run(asyncio.wait_for(scenario(), CHAOS_TIMEOUT))
