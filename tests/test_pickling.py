"""Pickling of structures and compiled kernel objects (process workers)."""

from __future__ import annotations

import pickle

from repro.core.pipeline import SolverPipeline
from repro.csp.generators import random_structure
from repro.kernel.compile import compile_source, compile_target
from repro.structures.fingerprint import canonical_fingerprint
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary
from repro.treewidth.heuristics import cached_decomposition

BINARY = Vocabulary.from_arities({"R": 2, "S": 1})


def example_structure(seed: int = 0) -> Structure:
    return random_structure(BINARY, 6, 10, seed=seed)


class TestStructurePickling:
    def test_round_trip_equality(self):
        structure = example_structure()
        clone = pickle.loads(pickle.dumps(structure))
        assert clone == structure
        assert hash(clone) == hash(structure)
        assert canonical_fingerprint(clone) == canonical_fingerprint(
            structure
        )

    def test_fingerprint_memo_survives(self):
        structure = example_structure()
        fingerprint = canonical_fingerprint(structure)
        clone = pickle.loads(pickle.dumps(structure))
        # Shipped, not recomputed: the memo slot is already populated.
        assert clone._fingerprint == fingerprint

    def test_compiled_memos_are_dropped(self):
        structure = example_structure()
        compile_source(structure)
        compile_target(structure)
        assert structure._compiled_source is not None
        assert structure._compiled_target is not None
        clone = pickle.loads(pickle.dumps(structure))
        assert clone._compiled_source is None
        assert clone._compiled_target is None

    def test_memo_drop_shrinks_payload(self):
        structure = example_structure()
        plain = len(pickle.dumps(structure))
        compile_source(structure)
        compile_target(structure)
        compiled = len(pickle.dumps(structure))
        # The compiled bitset index never rides along.
        assert compiled == plain

    def test_decomposition_memo_is_dropped(self):
        structure = example_structure()
        decomposition = cached_decomposition(structure)
        # Memoized: the same object comes back without re-decomposing.
        assert cached_decomposition(structure) is decomposition
        assert structure._decomposition is decomposition
        clone = pickle.loads(pickle.dumps(structure))
        assert clone._decomposition is None
        # The clone re-derives an equivalent decomposition lazily.
        rebuilt = cached_decomposition(clone)
        assert rebuilt is not decomposition
        assert rebuilt.bags == decomposition.bags
        assert rebuilt.edges == decomposition.edges

    def test_decomposition_memo_never_inflates_payload(self):
        structure = example_structure()
        plain = len(pickle.dumps(structure))
        cached_decomposition(structure)
        assert len(pickle.dumps(structure)) == plain

    def test_recompiles_lazily_after_round_trip(self):
        structure = example_structure()
        original = compile_target(structure)
        clone = pickle.loads(pickle.dumps(structure))
        recompiled = compile_target(clone)
        assert recompiled is not original
        # Value numbering is canonical (sorted universe); tuple *bit*
        # numbering follows set iteration order, which pickling may
        # permute — compare the order-insensitive views.
        assert recompiled.values == original.values
        assert recompiled.position_masks == original.position_masks
        assert recompiled.all_tuples_masks == original.all_tuples_masks
        for name, rows in original.tuples.items():
            assert set(recompiled.tuples[name]) == set(rows)


class TestCompiledObjectPickling:
    def test_compiled_target_round_trip(self):
        structure = example_structure(3)
        compiled = compile_target(structure)
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.values == compiled.values
        assert clone.value_index == compiled.value_index
        assert clone.tuples == compiled.tuples
        assert clone.supports == compiled.supports
        assert clone.position_masks == compiled.position_masks
        assert clone.all_tuples_masks == compiled.all_tuples_masks
        assert clone.full_mask == compiled.full_mask
        assert clone.structure == structure

    def test_compiled_source_round_trip(self):
        structure = example_structure(4)
        compiled = compile_source(structure)
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.variables == compiled.variables
        assert clone.var_index == compiled.var_index
        assert clone.constraints == compiled.constraints
        assert clone.constraints_of == compiled.constraints_of
        assert clone.degrees == compiled.degrees
        assert clone.degree_order == compiled.degree_order


class TestSolutionPickling:
    def test_solution_with_stats_round_trips(self):
        source = example_structure(1)
        target = example_structure(2)
        solution = SolverPipeline().solve(source, target)
        clone = pickle.loads(pickle.dumps(solution))
        assert clone.homomorphism == solution.homomorphism
        assert clone.strategy == solution.strategy
        assert clone.stats.attempted == solution.stats.attempted
        assert clone.stats.cache_misses == solution.stats.cache_misses
