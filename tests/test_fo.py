"""Tests for ∃FOᵏ syntax, evaluation, and the Lemma 5.2 translation."""

import pytest
from hypothesis import given, settings

from repro.fo.evaluation import evaluate_formula, satisfies
from repro.fo.from_decomposition import (
    homomorphism_exists_by_fo,
    structure_to_formula,
)
from repro.fo.syntax import (
    AndF,
    AtomF,
    ExistsF,
    OrF,
    TrueF,
    num_slots,
)
from repro.structures.graphs import clique, cycle, digraph_structure, path
from repro.structures.homomorphism import homomorphism_exists
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary
from repro.treewidth.heuristics import decompose

from conftest import structure_pairs


class TestSyntax:
    def test_free_slots_atom(self):
        atom = AtomF("E", (0, 1))
        assert atom.free_slots() == {0, 1}

    def test_free_slots_exists(self):
        formula = ExistsF(1, AtomF("E", (0, 1)))
        assert formula.free_slots() == {0}

    def test_free_slots_and_or(self):
        formula = AndF((AtomF("E", (0, 1)), AtomF("E", (1, 2))))
        assert formula.free_slots() == {0, 1, 2}
        disjunction = OrF((AtomF("E", (0, 1)), AtomF("E", (2, 2))))
        assert disjunction.free_slots() == {0, 1, 2}

    def test_num_slots_counts_bound_too(self):
        formula = ExistsF(1, AtomF("E", (0, 1)))
        assert num_slots(formula) == 2

    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError):
            AtomF("E", (-1,))

    def test_str_forms(self):
        assert "E(x0, x1)" in str(AtomF("E", (0, 1)))
        assert "∃x0" in str(ExistsF(0, TrueF()))


class TestEvaluation:
    def test_atom_evaluation(self):
        g = digraph_structure(range(3), [(0, 1), (1, 2)])
        result = evaluate_formula(AtomF("E", (0, 1)), g)
        assert result.rows == {(0, 1), (1, 2)}

    def test_atom_with_repeated_slots_selects_loops(self):
        g = digraph_structure(range(2), [(0, 0), (0, 1)])
        result = evaluate_formula(AtomF("E", (0, 0)), g)
        assert result.rows == {(0,)}

    def test_conjunction_is_join(self):
        g = digraph_structure(range(4), [(0, 1), (1, 2), (2, 3)])
        formula = AndF((AtomF("E", (0, 1)), AtomF("E", (1, 2))))
        result = evaluate_formula(formula, g)
        assert result.columns == (0, 1, 2)
        assert (0, 1, 2) in result.rows and (1, 2, 3) in result.rows
        assert len(result.rows) == 2

    def test_exists_is_projection(self):
        g = digraph_structure(range(3), [(0, 1), (1, 2)])
        formula = ExistsF(1, AtomF("E", (0, 1)))
        result = evaluate_formula(formula, g)
        assert result.rows == {(0,), (1,)}

    def test_disjunction_pads_over_domain(self):
        g = digraph_structure(range(2), [(0, 1)])
        formula = OrF((AtomF("E", (0, 1)), AtomF("E", (1, 0))))
        result = evaluate_formula(formula, g)
        assert result.columns == (0, 1)
        assert result.rows == {(0, 1), (1, 0)}

    def test_true_formula(self):
        g = digraph_structure(range(2), [])
        assert satisfies(g, TrueF())

    def test_vacuous_exists_on_empty_domain(self):
        empty = Structure(Vocabulary.from_arities({"E": 2}))
        assert not satisfies(empty, ExistsF(0, TrueF()))

    def test_variable_reuse_semantics(self):
        # exists x1 (E(x0,x1) and exists x0 E(x1,x0)): a path of length 2
        inner = ExistsF(0, AtomF("E", (1, 0)))
        formula = ExistsF(1, AndF((AtomF("E", (0, 1)), inner)))
        g = digraph_structure(range(3), [(0, 1), (1, 2)])
        result = evaluate_formula(formula, g)
        assert result.rows == {(0,)}
        assert num_slots(formula) == 2


class TestLemma52:
    def test_slot_bound(self):
        for structure in (path(6), cycle(6)):
            decomposition = decompose(structure)
            formula = structure_to_formula(structure, decomposition)
            assert num_slots(formula) <= decomposition.width + 1

    def test_path_needs_two_variables(self):
        formula = structure_to_formula(path(8))
        assert num_slots(formula) <= 2

    def test_sentence_is_closed(self):
        formula = structure_to_formula(cycle(4))
        assert formula.free_slots() == frozenset()

    def test_empty_structure(self):
        empty = Structure(Vocabulary.from_arities({"E": 2}))
        assert isinstance(structure_to_formula(empty), TrueF)

    def test_two_coloring_decisions(self):
        k2 = clique(2)
        assert homomorphism_exists_by_fo(cycle(6), k2)
        assert not homomorphism_exists_by_fo(cycle(5), k2)
        assert homomorphism_exists_by_fo(cycle(5), clique(3))

    def test_isolated_elements_require_nonempty_target(self):
        lonely = Structure(Vocabulary.from_arities({"E": 2}), {0})
        empty = Structure(Vocabulary.from_arities({"E": 2}))
        assert homomorphism_exists_by_fo(lonely, clique(2))
        assert not homomorphism_exists_by_fo(lonely, empty)

    @given(structure_pairs(max_elements=4, max_facts=5))
    @settings(max_examples=50, deadline=None)
    def test_against_backtracking(self, pair):
        a, b = pair
        assert homomorphism_exists_by_fo(a, b) == homomorphism_exists(a, b)

    @given(structure_pairs(max_elements=4, max_facts=4))
    @settings(max_examples=30, deadline=None)
    def test_agrees_with_treewidth_dp(self, pair):
        from repro.treewidth.dp import homomorphism_exists_by_treewidth

        a, b = pair
        assert homomorphism_exists_by_fo(a, b) == (
            homomorphism_exists_by_treewidth(a, b)
        )
