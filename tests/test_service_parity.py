"""Randomized parity: service answers == direct pipeline answers.

The P3 acceptance suite: the mixed serving workload (every route of the
pipeline, seeded) is answered once through the concurrent service —
coalescing, backend routing, process hop and all — and once by direct
``SolverPipeline.solve`` calls; the answers must agree instance by
instance, down to the assignment and the winning strategy.
"""

from __future__ import annotations

import asyncio

from _workloads import mixed_service_workload

from repro.core.pipeline import SolverPipeline
from repro.service import ServiceConfig, SolveService
from repro.structures.homomorphism import is_homomorphism


def test_service_matches_direct_solve_on_mixed_workload():
    # 13 variants x 8 families = 104 seeded instances, >= the 100 the
    # acceptance criteria ask for; smaller clique sizes keep the heavy
    # tail short enough for the unit suite.
    instances = mixed_service_workload(
        seed=42, variants=13, clique_sizes=(3, 4)
    )
    assert len(instances) >= 100

    config = ServiceConfig(thread_workers=4, process_workers=1)

    async def drive():
        async with SolveService(config) as service:
            return await service.submit_many(
                (source, target) for _label, source, target in instances
            )

    served = asyncio.run(drive())

    pipeline = SolverPipeline()
    for (label, source, target), solution in zip(instances, served):
        direct = pipeline.solve(source, target)
        assert solution.exists == direct.exists, label
        assert solution.strategy == direct.strategy, label
        assert solution.homomorphism == direct.homomorphism, label
        if solution.exists:
            assert is_homomorphism(solution.homomorphism, source, target)
