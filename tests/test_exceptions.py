"""Tests for the exception hierarchy and error ergonomics."""

import pytest

from repro.exceptions import (
    DatalogError,
    DecompositionError,
    FaultInjectedError,
    NotBooleanError,
    NotSchaeferError,
    ParseError,
    ReproError,
    ResourceBudgetError,
    ServiceError,
    SolveTimeoutError,
    VocabularyError,
    WorkerCrashedError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            VocabularyError,
            ParseError,
            NotBooleanError,
            NotSchaeferError,
            DecompositionError,
            DatalogError,
            ResourceBudgetError,
            FaultInjectedError,
            SolveTimeoutError,
            WorkerCrashedError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception):
        assert issubclass(exception, ReproError)
        with pytest.raises(ReproError):
            raise exception("boom")

    @pytest.mark.parametrize(
        "exception", [SolveTimeoutError, WorkerCrashedError]
    )
    def test_service_side_errors_are_service_errors(self, exception):
        # A service client catching ServiceError sees every way the
        # serving layer (as opposed to the instance) can fail it.
        assert issubclass(exception, ServiceError)


class TestErrorMessages:
    def test_vocabulary_error_names_symbol(self):
        from repro.structures.vocabulary import RelationSymbol, Vocabulary

        with pytest.raises(VocabularyError, match="E"):
            Vocabulary([RelationSymbol("E", 2), RelationSymbol("E", 3)])

    def test_parse_error_shows_offending_text(self):
        from repro.cq.parser import parse_query

        with pytest.raises(ParseError, match=":-"):
            parse_query("no arrow here")

    def test_schaefer_error_names_class(self):
        from repro.boolean.formulas import horn_defining_formula
        from repro.boolean.relations import BooleanRelation

        with pytest.raises(NotSchaeferError, match="Horn"):
            horn_defining_formula(
                BooleanRelation(2, [(0, 1), (1, 0)])
            )

    def test_decomposition_error_names_fact(self):
        from repro.structures.graphs import path
        from repro.treewidth.decomposition import TreeDecomposition

        d = TreeDecomposition([{0, 1}, {2, 3}], [(0, 1)])
        with pytest.raises(DecompositionError):
            d.validate(path(4))

    def test_datalog_error_on_bad_goal(self):
        from repro.datalog.program import parse_program

        with pytest.raises(DatalogError, match="goal"):
            parse_program("T(X) :- E(X, X)", goal="Missing")
