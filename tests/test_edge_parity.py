"""End-to-end parity: the real edge over localhost vs direct ``solve()``.

~100+ seeded mixed requests (the P3 serving mix plus containment pairs
and Datalog probes) travel the full distance — JSON over a real TCP
socket, HTTP framing, fingerprint routing, a pipe hop into a shard
process, a ``SolveService``, the kernel, and all the way back — and
must land on exactly the answers the library gives in-process: same
verdicts, and every witness a *checked* homomorphism (witnesses differ
legitimately between engines; validity is the parity that matters).

Also pinned here: the routing rule (the ``shard`` field equals
``shard_for(instance_fingerprint(...))``), fleet-wide coalescing
(same-fingerprint concurrent requests report shard-local coalesce
hits), and batch-endpoint parity item by item.
"""

from __future__ import annotations

import threading

import pytest

from _edge_harness import RunningEdge
from _workloads import containment_pair, mixed_service_workload
from repro.core import solve
from repro.cq.containment import contains
from repro.edge import EdgeClient, EdgeConfig, shard_for
from repro.structures.fingerprint import instance_fingerprint
from repro.structures.graphs import clique, random_graph
from repro.structures.homomorphism import is_homomorphism
from repro.structures.io import query_to_text, structure_from_dict, structure_to_dict

SEED = 42
NUM_SHARDS = 2


def _solve_corpus():
    """The P3 mix: 88 labelled instances, every pipeline route."""
    return mixed_service_workload(seed=SEED, variants=8, clique_sizes=(3, 4))


def _containment_corpus():
    return [containment_pair(3, seed=SEED + v) for v in range(12)]


@pytest.fixture(scope="module")
def edge():
    config = EdgeConfig(num_shards=NUM_SHARDS, max_body_bytes=8 * 1024 * 1024)
    with RunningEdge(config) as running:
        yield running
    assert running.sentry.messages() == []


@pytest.fixture(scope="module")
def client(edge):
    with EdgeClient(edge.host, edge.port, timeout=300.0) as c:
        yield c


def _check_witness(result, source, target):
    """An edge witness must be a real homomorphism of the instance.

    The response serializes the mapping as sorted ``[from, to]`` pairs;
    the instances here use JSON-scalar elements, but JSON turns integer
    relation elements that round-tripped through ``structure_to_dict``
    back faithfully, so the pairs rebuild the mapping directly.
    """
    mapping = {key: value for key, value in result["witness"]}
    assert is_homomorphism(mapping, source, target)


def _roundtrip(structure):
    """What the shard actually sees: the JSON round-tripped structure."""
    return structure_from_dict(structure_to_dict(structure))


def test_solve_parity_and_routing(edge, client):
    """88 mixed solves: verdict parity, witness validity, shard rule."""
    corpus = _solve_corpus()
    assert len(corpus) >= 80
    for label, source, target in corpus:
        expected = solve(source, target, plan=True)
        result = client.solve(source, target)
        assert result["verdict"] == expected.exists, label
        assert result["route"] == "solve"
        fingerprint = instance_fingerprint(_roundtrip(source), _roundtrip(target))
        assert result["shard"] == shard_for(fingerprint, NUM_SHARDS), label
        if result["verdict"]:
            _check_witness(result, _roundtrip(source), _roundtrip(target))
        else:
            assert result["witness"] is None


def test_containment_parity(edge, client):
    for q1, q2 in _containment_corpus():
        expected = contains(q1, q2)
        result = client.containment(query_to_text(q1), query_to_text(q2))
        assert result["verdict"] == expected, (str(q1), str(q2))
        assert result["route"] == "containment"
        # Containment is decided as D_{Q2} → D_{Q1}; a verdict's witness
        # maps canonical-database elements, checked shard-side — here
        # the verdict itself is the parity claim.
    # Textually identical pairs must route identically (the coalescing
    # precondition).
    q1, q2 = _containment_corpus()[0]
    first = client.containment(query_to_text(q1), query_to_text(q2))
    second = client.containment(query_to_text(q1), query_to_text(q2))
    assert first["shard"] == second["shard"]


def test_datalog_parity(edge, client):
    """The Theorem 4.2 route is exact: verdict equals plain solve."""
    corpus = [
        (label, source, target)
        for label, source, target in _solve_corpus()
        if label in ("two-coloring", "pebble-2col", "cq-evaluation")
    ]
    assert len(corpus) >= 12
    for label, source, target in corpus:
        expected = solve(source, target, plan=True)
        result = client.datalog(source, target, k=2)
        assert result["verdict"] == expected.exists, label
        assert result["route"] == "datalog"
        if result["verdict"]:
            _check_witness(result, _roundtrip(source), _roundtrip(target))


def test_batch_parity(edge, client):
    """The binary batch endpoint answers item-for-item like direct."""
    corpus = _solve_corpus()[:24]
    items = [
        {"op": "solve", "source": source, "target": target}
        for _label, source, target in corpus
    ]
    for q1, q2 in _containment_corpus()[:6]:
        items.append(
            {"op": "containment", "q1": query_to_text(q1), "q2": query_to_text(q2)}
        )
    results = client.batch(items)
    assert len(results) == len(items)
    for (label, source, target), result in zip(corpus, results[:24]):
        assert "error" not in result, (label, result)
        assert result["verdict"] == solve(source, target, plan=True).exists
        if result["verdict"]:
            # Batch witnesses cross as the raw mapping dict (pickle).
            assert is_homomorphism(
                result["witness"], _roundtrip(source), _roundtrip(target)
            )
    for (q1, q2), result in zip(_containment_corpus()[:6], results[24:]):
        assert result["verdict"] == contains(q1, q2)


def test_same_fingerprint_concurrent_requests_coalesce(edge):
    """Fleet-wide coalescing: duplicates land on one shard and share.

    Six concurrent clients ask the same ~1s instance; fingerprint
    routing sends all six to the same shard, whose service coalesces
    the five late arrivals onto the first computation — reported
    per-response via ``coalesced``.
    """
    source = random_graph(100, 0.2, seed=7)
    target = clique(4)
    results: list[dict] = []
    errors: list[Exception] = []

    def one():
        try:
            with EdgeClient(edge.host, edge.port, timeout=300.0) as c:
                results.append(c.solve(source, target))
        except Exception as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=one) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    assert not errors
    assert len(results) == 6
    assert {result["verdict"] for result in results} == {False}
    assert len({result["shard"] for result in results}) == 1
    assert any(result["coalesced"] for result in results), (
        "no concurrent duplicate reported a shard-local coalesce hit"
    )
