"""Randomized kernel-vs-legacy parity: the legacy solvers as oracle.

Seeded, hypothesis-style loops over the workload generators of
:mod:`repro.csp.generators` assert that the compiled bitset kernel and the
legacy pure-dict implementations agree — not just on sat/unsat but, for
the search, on the exact assignment, enumeration order, and
``SearchStats`` counters, since the kernel mirrors the reference search
tree.  Every found map is additionally verified by ``is_homomorphism``.

240 seeded instances run through the main parity loop (the acceptance
floor is 200); the pebble and enumeration loops use the smaller prefix
of the same stream to stay fast.
"""

from __future__ import annotations

import random

from repro.csp.ac3 import establish_arc_consistency
from repro.csp.backtracking import solve_backtracking
from repro.csp.generators import (
    bounded_treewidth_structure,
    coloring_instance,
    random_boolean_target,
    random_structure,
)
from repro.kernel import spoiler_wins_k2
from repro.pebble.game import spoiler_wins
from repro.structures.homomorphism import (
    SearchStats,
    all_homomorphisms,
    count_homomorphisms,
    find_homomorphism,
    homomorphism_exists,
    is_homomorphism,
)
from repro.structures.vocabulary import Vocabulary

BINARY = Vocabulary.from_arities({"E": 2})
TERNARY = Vocabulary.from_arities({"T": 3})
MIXED = Vocabulary.from_arities({"U": 1, "E": 2, "T": 3})

NUM_INSTANCES = 240


def _instance(seed: int):
    """One deterministic random (source, target) pair per seed."""
    rng = random.Random(seed)
    shape = seed % 5
    if shape == 0:
        n = rng.randint(2, 5)
        m = rng.randint(2, 4)
        return (
            random_structure(BINARY, n, rng.randint(2, 2 * n), seed=seed),
            random_structure(BINARY, m, rng.randint(2, 2 * m), seed=seed + 1),
        )
    if shape == 1:
        n = rng.randint(2, 4)
        m = rng.randint(2, 3)
        return (
            random_structure(TERNARY, n, rng.randint(2, 6), seed=seed),
            random_structure(TERNARY, m, rng.randint(2, 6), seed=seed + 1),
        )
    if shape == 2:
        graph, _bags, _tree = bounded_treewidth_structure(
            rng.randint(4, 7),
            2,
            edge_keep_probability=0.7,
            seed=seed,
        )
        return coloring_instance(graph, rng.randint(2, 3))
    if shape == 3:
        source = random_structure(TERNARY, rng.randint(2, 4), 5, seed=seed)
        target = random_boolean_target(TERNARY, rng.randint(2, 6), seed=seed)
        return source, target
    n = rng.randint(2, 4)
    m = rng.randint(2, 3)
    return (
        random_structure(MIXED, n, rng.randint(1, 4), seed=seed),
        random_structure(MIXED, m, rng.randint(1, 4), seed=seed + 1),
    )


class TestSearchParity:
    def test_find_homomorphism_exact_parity(self):
        """Same assignment, same counters, on every seeded instance."""
        sat = unsat = 0
        for seed in range(NUM_INSTANCES):
            a, b = _instance(seed)
            kernel_stats, legacy_stats = SearchStats(), SearchStats()
            kernel = find_homomorphism(a, b, stats=kernel_stats)
            legacy = find_homomorphism(
                a, b, stats=legacy_stats, engine="legacy"
            )
            assert kernel == legacy, f"seed {seed}: answers differ"
            assert (kernel_stats.nodes, kernel_stats.backtracks) == (
                legacy_stats.nodes,
                legacy_stats.backtracks,
            ), f"seed {seed}: search trees differ"
            if kernel is None:
                unsat += 1
            else:
                sat += 1
                assert is_homomorphism(kernel, a, b), f"seed {seed}"
        # the stream must actually exercise both outcomes
        assert sat >= 20 and unsat >= 20

    def test_enumeration_order_parity(self):
        for seed in range(0, NUM_INSTANCES, 4):
            a, b = _instance(seed)
            if len(a) > 4 or len(b) > 3:
                continue
            kernel = list(all_homomorphisms(a, b))
            legacy = list(all_homomorphisms(a, b, engine="legacy"))
            assert kernel == legacy, f"seed {seed}: enumeration differs"
            assert count_homomorphisms(a, b) == len(legacy)

    def test_exists_and_facade_agree(self):
        for seed in range(0, NUM_INSTANCES, 3):
            a, b = _instance(seed)
            expected = homomorphism_exists(a, b, engine="legacy")
            assert homomorphism_exists(a, b) == expected
            for use_degree in (False, True):
                kernel = solve_backtracking(
                    a, b, use_degree_order=use_degree
                )
                assert (kernel is not None) == expected, f"seed {seed}"
                if kernel is not None:
                    assert is_homomorphism(kernel, a, b), f"seed {seed}"


class TestPropagationParity:
    def test_arc_consistency_exact_parity(self):
        for seed in range(NUM_INSTANCES):
            a, b = _instance(seed)
            kernel = establish_arc_consistency(a, b)
            legacy = establish_arc_consistency(a, b, engine="legacy")
            assert kernel == legacy, f"seed {seed}: AC closures differ"

    def test_arc_consistency_parity_on_custom_domains(self):
        for seed in range(0, NUM_INSTANCES, 5):
            a, b = _instance(seed)
            rng = random.Random(seed * 31 + 7)
            # include the occasional out-of-universe value, which the
            # reference prunes like any unsupported one
            values = sorted(b.universe, key=repr) + ["out-of-universe"]
            domains = {
                e: {
                    v
                    for v in values
                    if rng.random() < 0.7
                }
                for e in a.universe
            }
            kernel = establish_arc_consistency(a, b, domains)
            legacy = establish_arc_consistency(
                a, b, domains, engine="legacy"
            )
            assert kernel == legacy, f"seed {seed}: custom-domain AC differs"


class TestPebbleParity:
    def test_two_pebble_game_parity(self):
        wins = losses = 0
        for seed in range(0, NUM_INSTANCES, 3):
            a, b = _instance(seed)
            if len(a) > 4 or len(b) > 4:
                continue
            expected = spoiler_wins(a, b, 2, engine="legacy")
            assert spoiler_wins_k2(a, b) == expected, f"seed {seed}"
            if expected:
                wins += 1
            else:
                losses += 1
        assert wins >= 5 and losses >= 5
