"""Property-based metamorphic suite for the Datalog plane (Section 4).

Every property is a law the least-fixpoint semantics — and the paper's
Theorem 4.2 identification of the canonical program with the existential
k-pebble game — forces on the implementation:

* the fixpoint is *unique*: semi-naive and naive evaluation, and the
  compiled bitset engine vs. the legacy dict engine, must produce the
  identical database, fact for fact;
* the fixpoint is *closed*: one more application of the immediate-
  consequence operator T_P derives nothing new (idempotence);
* evaluation is *monotone*: growing the EDB can only grow every IDB;
* Theorem 4.2: ρ_B derives its goal on A **iff** the Spoiler wins the
  existential k-pebble game on (A, B) — i.e. iff the kernel's winning
  family is empty.

Inputs come from the conftest strategies (``datalog_programs``,
``csp_templates``).  The suite runs deterministically under the ``ci``
profile and symbolically under the opt-in solver-backed profile
(``HYPOTHESIS_PROFILE=crosshair``, see conftest) — the properties are
pure input/output laws precisely so both backends can drive them.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.canonical_program import (
    canonical_program,
    canonical_refutes,
)
from repro.datalog.evaluation import (
    evaluate_program,
    goal_holds,
    immediate_consequences,
)
from repro.kernel.pebblek import pebble_game_family
from repro.pebble.game import spoiler_wins

from conftest import csp_templates, datalog_programs, structures


@st.composite
def datalog_instances(draw):
    """A program plus an input structure over its EDB vocabulary."""
    program = draw(datalog_programs())
    structure = draw(
        structures(
            program.edb_vocabulary(), max_elements=4, max_facts=6
        )
    )
    return program, structure


@st.composite
def game_instances(draw):
    """(source, template, k) for the Theorem 4.2 properties.

    The template is tiny (ρ_B has |B|^k IDBs and the legacy oracle
    evaluates it bottom-up); the source shares its vocabulary.
    """
    template = draw(csp_templates(max_elements=2, max_facts=3))
    source = draw(
        structures(template.vocabulary, max_elements=3, max_facts=4)
    )
    k = draw(st.integers(min_value=1, max_value=2))
    return source, template, k


class TestFixpointLaws:
    @given(datalog_instances())
    @settings(max_examples=50, deadline=None)
    def test_semi_naive_and_naive_agree(self, instance):
        """The least fixpoint does not depend on the evaluation order."""
        program, structure = instance
        semi = evaluate_program(program, structure, method="semi_naive")
        naive = evaluate_program(program, structure, method="naive")
        assert semi == naive

    @given(datalog_instances())
    @settings(max_examples=50, deadline=None)
    def test_kernel_matches_legacy_database(self, instance):
        """Bitset and dict engines produce the identical database."""
        program, structure = instance
        kernel = evaluate_program(program, structure, engine="kernel")
        legacy = evaluate_program(program, structure, engine="legacy")
        assert kernel == legacy
        for method in ("semi_naive", "naive"):
            assert (
                evaluate_program(
                    program, structure, method=method, engine="kernel"
                )
                == legacy
            )

    @given(datalog_instances())
    @settings(max_examples=50, deadline=None)
    def test_goal_decision_parity(self, instance):
        """The early-exiting kernel goal decision equals the legacy one."""
        program, structure = instance
        assert goal_holds(program, structure) == goal_holds(
            program, structure, engine="legacy"
        )

    @given(datalog_instances())
    @settings(max_examples=50, deadline=None)
    def test_fixpoint_is_idempotent(self, instance):
        """T_P applied to the fixpoint derives nothing outside it."""
        program, structure = instance
        fixpoint = evaluate_program(program, structure)
        derived = immediate_consequences(
            program, fixpoint, structure.universe
        )
        for predicate, facts in derived.items():
            assert facts <= fixpoint[predicate], predicate

    @given(datalog_instances(), st.data())
    @settings(max_examples=50, deadline=None)
    def test_evaluation_is_monotone_in_the_edb(self, instance, data):
        """Adding EDB facts can only grow every IDB relation."""
        program, structure = instance
        universe = sorted(structure.universe)
        grown = {
            symbol.name: set(rel)
            for symbol, rel in structure.relations()
        }
        for symbol in structure.vocabulary:
            extra = data.draw(
                st.sets(
                    st.tuples(
                        *[st.sampled_from(universe)] * symbol.arity
                    ),
                    max_size=2,
                ),
                label=f"extra facts for {symbol.name}",
            )
            grown[symbol.name] |= extra
        bigger = type(structure)(
            structure.vocabulary, structure.universe, grown
        )
        before = evaluate_program(program, structure)
        after = evaluate_program(program, bigger)
        for predicate in program.idb_predicates:
            assert before[predicate] <= after[predicate], predicate


class TestTheorem42:
    @given(game_instances())
    @settings(max_examples=30, deadline=None)
    def test_canonical_solves_iff_family_empty(self, instance):
        """ρ_B derives its goal on A iff the kernel's winning family for
        the Duplicator is empty (the Spoiler wins)."""
        source, template, k = instance
        refutes = canonical_refutes(source, template, k)
        family = pebble_game_family(source, template, k)
        assert refutes == (family == set())
        assert (not refutes) == bool(family)

    @given(game_instances())
    @settings(max_examples=20, deadline=None)
    def test_canonical_refutes_engine_parity(self, instance):
        """The pebblek route and the materialized-ρ_B route agree."""
        source, template, k = instance
        assert canonical_refutes(
            source, template, k
        ) == canonical_refutes(source, template, k, engine="legacy")

    @given(game_instances())
    @settings(max_examples=20, deadline=None)
    def test_canonical_program_tracks_reference_game(self, instance):
        """Evaluating ρ_B bottom-up equals the reference game verdict."""
        source, template, k = instance
        program = canonical_program(template, k)
        assert goal_holds(program, source) == spoiler_wins(
            source, template, k
        )
