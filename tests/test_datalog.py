"""Tests for the Datalog engine (Section 4.1)."""

import pytest

from repro.datalog.evaluation import evaluate_program, goal_holds
from repro.datalog.program import (
    DatalogProgram,
    Rule,
    parse_program,
    parse_rule,
)
from repro.cq.query import Atom
from repro.exceptions import DatalogError
from repro.structures.graphs import cycle, digraph_structure, path
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

TC_PROGRAM = """
# transitive closure
T(X, Y) :- E(X, Y)
T(X, Y) :- T(X, Z), E(Z, Y)
"""

NON2COL_PROGRAM = """
P(X, Y) :- E(X, Y)
P(X, Y) :- P(X, Z), E(Z, W), E(W, Y)
Q() :- P(X, X)
"""


class TestProgramStructure:
    def test_parse_rule(self):
        rule = parse_rule("P(X, Y) :- P(X, Z), E(Z, Y).")
        assert rule.head.relation == "P"
        assert len(rule.body) == 2

    def test_parse_bodyless_rule(self):
        rule = parse_rule("T(X, X)")
        assert rule.body == ()
        assert rule.unsafe_variables == {"X"}

    def test_idb_edb_split(self):
        program = parse_program(TC_PROGRAM, goal="T")
        assert program.idb_predicates == {"T"}
        assert program.edb_predicates == {"E"}

    def test_goal_must_be_idb(self):
        with pytest.raises(DatalogError):
            parse_program(TC_PROGRAM, goal="E")

    def test_arity_consistency_enforced(self):
        with pytest.raises(DatalogError):
            DatalogProgram(
                [
                    Rule(Atom("P", ("X",)), (Atom("E", ("X", "Y")),)),
                    Rule(Atom("P", ("X", "Y")), (Atom("E", ("X", "Y")),)),
                ],
                goal="P",
            )

    def test_k_datalog_membership(self):
        program = parse_program(NON2COL_PROGRAM, goal="Q")
        assert program.max_distinct_variables() == 4
        assert program.is_k_datalog(4)
        assert not program.is_k_datalog(3)

    def test_comments_ignored(self):
        program = parse_program(
            "T(X, Y) :- E(X, Y)  % inline\n# whole line\n", goal="T"
        )
        assert len(program) == 1

    def test_str_roundtrip(self):
        program = parse_program(TC_PROGRAM, goal="T")
        assert "T(X, Y)" in str(program)


class TestEvaluation:
    def test_transitive_closure(self):
        program = parse_program(TC_PROGRAM, goal="T")
        chain = digraph_structure(range(4), [(0, 1), (1, 2), (2, 3)])
        relations = evaluate_program(program, chain)
        assert relations["T"] == {
            (0, 1), (1, 2), (2, 3),
            (0, 2), (1, 3),
            (0, 3),
        }

    def test_cycle_closure_is_complete(self):
        program = parse_program(TC_PROGRAM, goal="T")
        relations = evaluate_program(
            program, digraph_structure(range(3), [(0, 1), (1, 2), (2, 0)])
        )
        assert len(relations["T"]) == 9

    def test_goal_holds_non2colorability(self):
        program = parse_program(NON2COL_PROGRAM, goal="Q")
        assert goal_holds(program, cycle(5))
        assert goal_holds(program, cycle(7))
        assert not goal_holds(program, cycle(6))
        assert not goal_holds(program, path(5))

    def test_missing_edb_treated_empty(self):
        program = parse_program(TC_PROGRAM, goal="T")
        no_edges = Structure(Vocabulary.from_arities({"E": 2}), range(3))
        assert not goal_holds(program, no_edges)

    def test_unsafe_head_ranges_over_domain(self):
        program = parse_program(
            "All(X, Y) :- Node(X)", goal="All"
        )
        s = Structure(
            Vocabulary.from_arities({"Node": 1}),
            {0, 1, 2},
            {"Node": {(0,)}},
        )
        relations = evaluate_program(program, s)
        assert relations["All"] == {(0, y) for y in (0, 1, 2)}

    def test_arity_clash_with_structure_rejected(self):
        program = parse_program(TC_PROGRAM, goal="T")
        bad = Structure(Vocabulary.from_arities({"E": 3}), (), {"E": {(0, 1, 2)}})
        with pytest.raises(DatalogError):
            evaluate_program(program, bad)

    def test_prepopulated_idb_rejected(self):
        program = parse_program(TC_PROGRAM, goal="T")
        bad = Structure(
            Vocabulary.from_arities({"T": 2, "E": 2}),
            (),
            {"T": {(0, 1)}, "E": {(0, 1)}},
        )
        with pytest.raises(DatalogError):
            evaluate_program(program, bad)

    def test_mutual_recursion(self):
        # even/odd distance from node 0 marked by a unary Start
        program = parse_program(
            """
            Even(X) :- Start(X)
            Odd(Y) :- Even(X), E(X, Y)
            Even(Y) :- Odd(X), E(X, Y)
            """,
            goal="Even",
        )
        vocabulary = Vocabulary.from_arities({"Start": 1, "E": 2})
        chain = Structure(
            vocabulary,
            range(4),
            {"Start": {(0,)}, "E": {(0, 1), (1, 2), (2, 3)}},
        )
        relations = evaluate_program(program, chain)
        assert relations["Even"] == {(0,), (2,)}
        assert relations["Odd"] == {(1,), (3,)}

    def test_semi_naive_matches_restart_evaluation(self):
        # evaluating twice from scratch gives identical fixpoints
        program = parse_program(TC_PROGRAM, goal="T")
        g = digraph_structure(range(5), [(0, 1), (1, 2), (3, 4), (2, 0)])
        first = evaluate_program(program, g)
        second = evaluate_program(program, g)
        assert first == second
