"""Exhaustive-oracle tests: the search engine vs all possible maps.

On tiny instances we can enumerate *every* function from A's universe to
B's universe and check the homomorphism condition directly — a ground
truth independent of all library search code.
"""

from itertools import product

from hypothesis import given, settings

from repro.structures.homomorphism import (
    all_homomorphisms,
    count_homomorphisms,
    find_homomorphism,
    is_homomorphism,
)

from conftest import structure_pairs


def brute_force_homomorphisms(a, b):
    """Every map A→B satisfying the homomorphism condition, exhaustively."""
    elements = sorted(a.universe, key=repr)
    values = sorted(b.universe, key=repr)
    found = []
    for image in product(values, repeat=len(elements)):
        mapping = dict(zip(elements, image))
        if all(
            tuple(mapping[e] for e in fact) in b.relation(name)
            for name, fact in a.facts()
        ):
            found.append(mapping)
    return found


class TestAgainstExhaustiveEnumeration:
    @given(structure_pairs(max_elements=3, max_facts=4))
    @settings(max_examples=60, deadline=None)
    def test_existence_agrees(self, pair):
        a, b = pair
        expected = bool(brute_force_homomorphisms(a, b))
        assert (find_homomorphism(a, b) is not None) == expected

    @given(structure_pairs(max_elements=3, max_facts=3))
    @settings(max_examples=40, deadline=None)
    def test_count_agrees(self, pair):
        a, b = pair
        assert count_homomorphisms(a, b) == len(
            brute_force_homomorphisms(a, b)
        )

    @given(structure_pairs(max_elements=3, max_facts=3))
    @settings(max_examples=30, deadline=None)
    def test_enumeration_is_exactly_the_brute_force_set(self, pair):
        a, b = pair
        ours = {
            tuple(sorted(h.items(), key=repr))
            for h in all_homomorphisms(a, b)
        }
        truth = {
            tuple(sorted(h.items(), key=repr))
            for h in brute_force_homomorphisms(a, b)
        }
        assert ours == truth

    @given(structure_pairs(max_elements=3, max_facts=3))
    @settings(max_examples=30, deadline=None)
    def test_is_homomorphism_matches_condition(self, pair):
        a, b = pair
        for mapping in brute_force_homomorphisms(a, b):
            assert is_homomorphism(mapping, a, b)
