"""Tests for Booleanization (Lemma 3.5)."""

import pytest
from hypothesis import given, settings

from repro.boolean.booleanize import booleanize, code_bits
from repro.exceptions import NotBooleanError
from repro.structures.graphs import clique, cycle, directed_cycle
from repro.structures.homomorphism import (
    homomorphism_exists,
    find_homomorphism,
    is_homomorphism,
)
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

from conftest import structure_pairs


class TestCodeBits:
    def test_big_endian(self):
        assert code_bits(5, 3) == (1, 0, 1)
        assert code_bits(0, 2) == (0, 0)
        assert code_bits(3, 2) == (1, 1)

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError):
            code_bits(4, 2)
        with pytest.raises(ValueError):
            code_bits(-1, 2)


class TestBooleanizeShape:
    def test_bit_count(self):
        bz = booleanize(cycle(3), clique(3))
        assert bz.bits == 2  # ceil(log2 3)

    def test_singleton_target_gets_one_bit(self):
        loop = Structure(
            Vocabulary.from_arities({"E": 2}), {0}, {"E": {(0, 0)}}
        )
        bz = booleanize(loop, loop)
        assert bz.bits == 1
        assert bz.target.is_boolean

    def test_arities_scaled(self):
        bz = booleanize(cycle(3), clique(3))
        assert bz.target.vocabulary.arity("E") == 4
        assert bz.source.vocabulary.arity("E") == 4

    def test_source_universe_copies(self):
        bz = booleanize(cycle(3), clique(3))
        assert len(bz.source) == 3 * 2

    def test_empty_target_rejected(self):
        empty = Structure(Vocabulary.from_arities({"E": 2}))
        with pytest.raises(NotBooleanError):
            booleanize(cycle(3), empty)

    def test_custom_labeling_validation(self):
        k2 = clique(2)
        with pytest.raises(NotBooleanError):
            booleanize(k2, k2, {0: 0})           # incomplete
        with pytest.raises(NotBooleanError):
            booleanize(k2, k2, {0: 1, 1: 1})     # not injective
        with pytest.raises(NotBooleanError):
            booleanize(k2, k2, {0: -1, 1: 0})    # negative code


class TestLemma35:
    def test_two_colorability_preserved(self):
        k2 = clique(2)
        for n in (3, 4, 5, 6):
            bz = booleanize(cycle(n), k2)
            assert homomorphism_exists(cycle(n), k2) == (
                homomorphism_exists(bz.source, bz.target)
            )

    def test_encode_decode_roundtrip(self):
        c6, k2 = cycle(6), clique(2)
        bz = booleanize(c6, k2)
        h = find_homomorphism(c6, k2)
        encoded = bz.encode_homomorphism(h)
        assert is_homomorphism(encoded, bz.source, bz.target)
        decoded = bz.decode_homomorphism(encoded)
        assert decoded == h

    def test_decode_arbitrary_boolean_hom(self):
        c4, k2 = cycle(4), clique(2)
        bz = booleanize(c4, k2)
        hom_b = find_homomorphism(bz.source, bz.target)
        assert hom_b is not None
        decoded = bz.decode_homomorphism(hom_b)
        assert is_homomorphism(decoded, c4, k2)

    def test_isolated_elements_decoded_to_fallback(self):
        vocabulary = Vocabulary.from_arities({"E": 2})
        source = Structure(vocabulary, {0, 1, 9}, {"E": {(0, 1)}})
        target = clique(2)
        bz = booleanize(source, target)
        hom_b = find_homomorphism(bz.source, bz.target)
        decoded = bz.decode_homomorphism(hom_b)
        assert decoded[9] in target.universe
        assert is_homomorphism(decoded, source, target)

    @given(structure_pairs(max_elements=3, max_facts=4))
    @settings(max_examples=50, deadline=None)
    def test_equivalence_random(self, pair):
        a, b = pair
        bz = booleanize(a, b)
        assert homomorphism_exists(a, b) == homomorphism_exists(
            bz.source, bz.target
        )

    @given(structure_pairs(max_elements=3, max_facts=3))
    @settings(max_examples=30, deadline=None)
    def test_decoded_homs_verify(self, pair):
        a, b = pair
        bz = booleanize(a, b)
        hom_b = find_homomorphism(bz.source, bz.target)
        if hom_b is not None:
            decoded = bz.decode_homomorphism(hom_b)
            assert is_homomorphism(decoded, a, b)


class TestExample38Labelings:
    def test_first_labeling_affine_only(self):
        c4 = directed_cycle(4)
        bz = booleanize(c4, c4, {0: 0b00, 1: 0b01, 2: 0b10, 3: 0b11})
        from repro.boolean.relations import boolean_relations_of

        e = boolean_relations_of(bz.target)["E"]
        assert e.tuples == {
            (0, 0, 0, 1),
            (0, 1, 1, 0),
            (1, 0, 1, 1),
            (1, 1, 0, 0),
        }
        assert e.is_affine
        assert not e.is_horn and not e.is_dual_horn
        assert not e.is_bijunctive
        assert not e.is_zero_valid and not e.is_one_valid

    def test_second_labeling_bijunctive_and_affine(self):
        c4 = directed_cycle(4)
        bz = booleanize(c4, c4, {0: 0b00, 1: 0b10, 2: 0b11, 3: 0b01})
        from repro.boolean.relations import boolean_relations_of

        e = boolean_relations_of(bz.target)["E"]
        assert e.tuples == {
            (0, 0, 1, 0),
            (1, 0, 1, 1),
            (1, 1, 0, 1),
            (0, 1, 0, 0),
        }
        assert e.is_bijunctive and e.is_affine
        assert not e.is_horn and not e.is_dual_horn
