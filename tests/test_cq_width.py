"""Tests for query-width measures and width-aware containment."""

from hypothesis import given, settings

from repro.cq.containment import contains
from repro.cq.parser import parse_query
from repro.cq.width import (
    contains_bounded_width,
    is_acyclic_width,
    query_treewidth,
    query_treewidth_upper_bound,
)
from repro.csp.generators import random_chain_query, random_two_atom_query


class TestWidthMeasures:
    def test_chain_query_is_acyclic(self):
        q = random_chain_query(5)
        assert query_treewidth(q) == 1
        assert is_acyclic_width(q)

    def test_triangle_query_width_two(self):
        q = parse_query("Q :- E(X, Y), E(Y, Z), E(Z, X).")
        assert query_treewidth(q) == 2
        assert not is_acyclic_width(q)

    def test_single_atom_width(self):
        q = parse_query("Q(X) :- E(X, Y).")
        assert query_treewidth(q) == 1

    def test_wide_atom_width(self):
        q = parse_query("Q :- T(X, Y, Z, W).")
        assert query_treewidth(q) == 3  # 4-clique in the Gaifman graph

    def test_upper_bound_dominates_exact(self):
        for text in (
            "Q :- E(X, Y), E(Y, Z), E(Z, X).",
            "Q(X) :- E(X, Y), E(Y, Z), E(Z, W).",
        ):
            q = parse_query(text)
            assert query_treewidth_upper_bound(q) >= query_treewidth(q)

    def test_markers_do_not_inflate_width(self):
        open_q = parse_query("Q(X0, X5) :- E(X0, X1), E(X1, X2), "
                             "E(X2, X3), E(X3, X4), E(X4, X5).")
        assert query_treewidth(open_q) == 1


class TestBoundedWidthContainment:
    def test_basic_positive_and_negative(self):
        q1 = parse_query("Q(X) :- E(X, Y), E(Y, Z).")
        q2 = parse_query("Q(X) :- E(X, Y).")
        assert contains_bounded_width(q1, q2)
        assert not contains_bounded_width(q2, q1)

    def test_agrees_with_general_containment(self):
        for seed in range(12):
            q1 = random_two_atom_query(2, 4, seed=seed)
            q2 = random_two_atom_query(2, 4, seed=seed + 77)
            assert contains_bounded_width(q1, q2) == contains(q1, q2)

    def test_chain_queries(self):
        long = random_chain_query(6)
        short = random_chain_query(3)
        # head variables pin the endpoints: neither containment holds in
        # general (path lengths differ), but both routes must agree
        assert contains_bounded_width(long, short) == contains(long, short)
        assert contains_bounded_width(short, long) == contains(short, long)
