"""Tests for conjunctive-query evaluation (hom route vs join route)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq.evaluation import evaluate, evaluate_join, holds
from repro.cq.parser import parse_query
from repro.cq.query import Atom, ConjunctiveQuery
from repro.structures.graphs import (
    clique,
    cycle,
    digraph_structure,
    graph_structure,
    path,
    random_digraph,
)
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary


class TestEvaluate:
    def test_single_edge_query(self):
        q = parse_query("Q(X, Y) :- E(X, Y).")
        db = digraph_structure(range(3), [(0, 1), (1, 2)])
        assert evaluate(q, db) == {(0, 1), (1, 2)}

    def test_path_of_length_two(self):
        q = parse_query("Q(X, Z) :- E(X, Y), E(Y, Z).")
        db = digraph_structure(range(4), [(0, 1), (1, 2), (2, 3)])
        assert evaluate(q, db) == {(0, 2), (1, 3)}

    def test_repeated_variable_selects_loops(self):
        q = parse_query("Q(X) :- E(X, X).")
        db = digraph_structure(range(3), [(0, 0), (1, 2)])
        assert evaluate(q, db) == {(0,)}

    def test_boolean_query_truth(self):
        q = parse_query("Q :- E(X, Y), E(Y, X).")
        assert holds(q, cycle(4))                       # symmetric edges
        assert not holds(q, digraph_structure([0, 1], [(0, 1)]))

    def test_boolean_result_shape(self):
        q = parse_query("Q :- E(X, Y).")
        assert evaluate(q, digraph_structure([0, 1], [(0, 1)])) == {()}
        assert evaluate(q, digraph_structure([0, 1], [])) == set()

    def test_head_variable_not_in_body_active_domain(self):
        q = parse_query("Q(W) :- E(X, Y).")
        db = digraph_structure(range(3), [(0, 1)])
        assert evaluate(q, db) == {(0,), (1,), (2,)}

    def test_repeated_head_variable(self):
        q = parse_query("Q(X, X) :- E(X, Y).")
        db = digraph_structure(range(2), [(0, 1)])
        assert evaluate(q, db) == {(0, 0)}

    def test_query_predicate_missing_from_database(self):
        q = parse_query("Q(X) :- F(X, X).")
        db = digraph_structure(range(2), [(0, 1)])
        assert evaluate(q, db) == set()

    def test_empty_body_returns_domain_product(self):
        q = parse_query("Q(X) :- .")
        db = digraph_structure(range(3), [])
        assert evaluate(q, db) == {(0,), (1,), (2,)}


class TestJoinEvaluator:
    def test_matches_on_paper_style_query(self):
        q = parse_query("Q(X1, X2) :- P(X1, Z1), R(Z1, Z2), R(Z2, X2).")
        vocabulary = Vocabulary.from_arities({"P": 2, "R": 2})
        db = Structure(
            vocabulary,
            range(5),
            {
                "P": {(0, 1), (3, 3)},
                "R": {(1, 2), (2, 4), (3, 0), (0, 3)},
            },
        )
        assert evaluate_join(q, db) == evaluate(q, db)

    def test_cartesian_when_no_shared_variables(self):
        q = parse_query("Q(X, Z) :- E(X, Y), F(Z, W).")
        vocabulary = Vocabulary.from_arities({"E": 2, "F": 2})
        db = Structure(
            vocabulary, range(3), {"E": {(0, 1)}, "F": {(2, 0), (1, 1)}}
        )
        assert evaluate_join(q, db) == evaluate(q, db) == {
            (0, 2), (0, 1)
        }

    def test_empty_intermediate_short_circuits(self):
        q = parse_query("Q(X) :- E(X, Y), F(Y, Y).")
        vocabulary = Vocabulary.from_arities({"E": 2, "F": 2})
        db = Structure(vocabulary, range(3), {"E": {(0, 1)}, "F": set()})
        assert evaluate_join(q, db) == set()

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_agreement_with_hom_route(self, seed):
        db = random_digraph(4, 0.4, seed=seed)
        queries = [
            parse_query("Q(X, Z) :- E(X, Y), E(Y, Z)."),
            parse_query("Q(X) :- E(X, Y), E(Y, X)."),
            parse_query("Q(X, Y) :- E(X, Y), E(X, X)."),
            parse_query("Q :- E(X, Y), E(Y, Z), E(Z, X)."),
            parse_query("Q(W) :- E(X, Y)."),
        ]
        for q in queries:
            assert evaluate_join(q, db) == evaluate(q, db)

    def test_chain_query_on_path(self):
        q = parse_query("Q(A, D) :- E(A, B), E(B, C), E(C, D).")
        db = path(5)
        assert evaluate_join(q, db) == evaluate(q, db)

    def test_star_query(self):
        q = parse_query("Q(C) :- E(C, X), E(C, Y), E(C, Z).")
        db = graph_structure(range(5), [(0, i) for i in range(1, 5)])
        assert evaluate_join(q, db) == evaluate(q, db)
        assert (0,) in evaluate(q, db)


class TestMonotonicity:
    def test_evaluation_monotone_under_database_growth(self):
        q = parse_query("Q(X, Z) :- E(X, Y), E(Y, Z).")
        small = digraph_structure(range(3), [(0, 1), (1, 2)])
        large = digraph_structure(range(4), [(0, 1), (1, 2), (2, 3)])
        assert evaluate(q, small) <= evaluate(q, large)

    def test_containment_implies_answer_inclusion(self):
        # the semantic definition of containment, checked on a concrete db
        q1 = parse_query("Q(X) :- E(X, Y), E(Y, Z).")
        q2 = parse_query("Q(X) :- E(X, Y).")
        for seed in range(5):
            db = random_digraph(4, 0.5, seed=seed)
            assert evaluate(q1, db) <= evaluate(q2, db)
