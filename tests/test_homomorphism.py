"""Unit and property tests for the homomorphism engine."""

import pytest
from hypothesis import given, settings

from repro.exceptions import VocabularyError
from repro.structures.graphs import clique, cycle, path
from repro.structures.homomorphism import (
    SearchStats,
    all_homomorphisms,
    count_homomorphisms,
    find_homomorphism,
    homomorphism_exists,
    image,
    is_homomorphism,
)
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

from conftest import structure_pairs, structures

GRAPH = Vocabulary.from_arities({"E": 2})


class TestIsHomomorphism:
    def test_identity_is_homomorphism(self):
        c = cycle(4)
        assert is_homomorphism({e: e for e in c.universe}, c, c)

    def test_partial_map_rejected(self):
        c = cycle(4)
        assert not is_homomorphism({0: 0}, c, c)

    def test_map_outside_target_rejected(self):
        c = cycle(4)
        mapping = {e: 99 for e in c.universe}
        assert not is_homomorphism(mapping, c, c)

    def test_edge_violation_detected(self):
        c4, k2 = cycle(4), clique(2)
        bad = {0: 0, 1: 0, 2: 1, 3: 1}  # edge (0,1) -> (0,0) not in K2
        assert not is_homomorphism(bad, c4, k2)
        good = {0: 0, 1: 1, 2: 0, 3: 1}
        assert is_homomorphism(good, c4, k2)

    def test_vocabulary_mismatch_raises(self):
        other = Structure(Vocabulary.from_arities({"F": 2}))
        with pytest.raises(VocabularyError):
            is_homomorphism({}, cycle(3), other)


class TestFindHomomorphism:
    def test_even_cycle_two_colorable(self):
        h = find_homomorphism(cycle(6), clique(2))
        assert h is not None
        assert is_homomorphism(h, cycle(6), clique(2))

    def test_odd_cycle_not_two_colorable(self):
        assert find_homomorphism(cycle(5), clique(2)) is None

    def test_odd_cycle_three_colorable(self):
        h = find_homomorphism(cycle(5), clique(3))
        assert h is not None and is_homomorphism(h, cycle(5), clique(3))

    def test_clique_into_smaller_clique_fails(self):
        assert find_homomorphism(clique(4), clique(3)) is None

    def test_path_into_edge(self):
        h = find_homomorphism(path(7), clique(2))
        assert h is not None

    def test_empty_source_maps_trivially(self):
        empty = Structure(GRAPH)
        assert find_homomorphism(empty, cycle(3)) == {}

    def test_nonempty_source_empty_target(self):
        empty = Structure(GRAPH)
        assert find_homomorphism(cycle(3), empty) is None

    def test_empty_relation_in_target_blocks(self):
        no_edges = Structure(GRAPH, range(3))
        assert find_homomorphism(cycle(3), no_edges) is None
        # but an edgeless source maps fine
        lone = Structure(GRAPH, {0})
        assert find_homomorphism(lone, no_edges) is not None

    def test_fixed_pins_respected(self):
        c4, k2 = cycle(4), clique(2)
        h = find_homomorphism(c4, k2, fixed={0: 1})
        assert h is not None and h[0] == 1

    def test_fixed_pin_unsatisfiable(self):
        # pin two adjacent vertices to the same color
        h = find_homomorphism(cycle(4), clique(2), fixed={0: 0, 1: 0})
        assert h is None

    def test_fixed_pin_outside_target_returns_none(self):
        assert find_homomorphism(cycle(4), clique(2), fixed={0: 9}) is None

    def test_static_order_used(self):
        c4, k2 = cycle(4), clique(2)
        h = find_homomorphism(c4, k2, order=[3, 2, 1, 0])
        assert h is not None and is_homomorphism(h, c4, k2)

    def test_stats_collected(self):
        stats = SearchStats()
        find_homomorphism(cycle(5), clique(2), stats=stats)
        assert stats.nodes > 0
        assert "nodes" in repr(stats)


class TestEnumeration:
    def test_count_two_colorings_of_even_cycle(self):
        # proper 2-colorings of C4 = 2
        assert count_homomorphisms(cycle(4), clique(2)) == 2

    def test_count_three_colorings_of_triangle(self):
        # proper 3-colorings of K3 = 3! = 6
        assert count_homomorphisms(clique(3), clique(3)) == 6

    def test_all_homomorphisms_are_valid_and_distinct(self):
        homs = list(all_homomorphisms(path(4), clique(2)))
        assert len(homs) == len({tuple(sorted(h.items())) for h in homs})
        for h in homs:
            assert is_homomorphism(h, path(4), clique(2))

    def test_exists_matches_find(self):
        assert homomorphism_exists(cycle(4), clique(2))
        assert not homomorphism_exists(cycle(5), clique(2))


class TestImage:
    def test_image_of_identity(self):
        c = cycle(4)
        assert image(c, {e: e for e in c.universe}) == c

    def test_image_collapses(self):
        c4, k2 = cycle(4), clique(2)
        h = find_homomorphism(c4, k2)
        img = image(c4, h)
        assert img.universe <= {0, 1}
        # there is always a hom onto the image
        assert is_homomorphism(h, c4, img)


class TestHomomorphismProperties:
    @given(structure_pairs())
    @settings(max_examples=60, deadline=None)
    def test_found_maps_verify(self, pair):
        a, b = pair
        h = find_homomorphism(a, b)
        if h is not None:
            assert is_homomorphism(h, a, b)

    @given(structure_pairs())
    @settings(max_examples=40, deadline=None)
    def test_composition_with_identity(self, pair):
        a, b = pair
        h = find_homomorphism(a, b)
        if h is None:
            return
        # composing with the identity endomorphism of b stays a hom
        identity = {e: e for e in b.universe}
        composed = {x: identity[y] for x, y in h.items()}
        assert is_homomorphism(composed, a, b)

    @given(structures())
    @settings(max_examples=40, deadline=None)
    def test_reflexivity(self, a):
        assert homomorphism_exists(a, a)

    @given(structure_pairs())
    @settings(max_examples=30, deadline=None)
    def test_image_factorization(self, pair):
        a, b = pair
        h = find_homomorphism(a, b)
        if h is None:
            return
        img = image(a, h)
        # a -> image and image -> b (inclusion)
        assert is_homomorphism(h, a, img)
        inclusion = {e: e for e in img.universe}
        assert is_homomorphism(inclusion, img, b)

    @given(structure_pairs())
    @settings(max_examples=30, deadline=None)
    def test_enumeration_includes_found(self, pair):
        a, b = pair
        if len(a) > 3 or len(b) > 3:
            return
        h = find_homomorphism(a, b)
        homs = [
            tuple(sorted(m.items(), key=repr))
            for m in all_homomorphisms(a, b)
        ]
        if h is None:
            assert homs == []
        else:
            assert tuple(sorted(h.items(), key=repr)) in homs
