"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os
import sys
from pathlib import Path

# Allow running the tests from a checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.boolean.relations import (
    BooleanRelation,
    tuple_and,
    tuple_majority,
    tuple_or,
    tuple_xor3,
)
from repro.cq.query import Atom, ConjunctiveQuery
from repro.datalog.program import DatalogProgram, Rule
from repro.structures.structure import Structure
from repro.structures.vocabulary import RelationSymbol, Vocabulary


# ---------------------------------------------------------------------------
# Hypothesis profiles
# ---------------------------------------------------------------------------
#
# The "ci" profile makes property runs deterministic and bounded:
# derandomized example streams (a fixed seed — reruns of a commit see the
# same cases), a hard per-example deadline, and a capped example count so
# the tier-1 wall-clock stays predictable.  Select it by exporting
# HYPOTHESIS_PROFILE=ci (the GitHub workflow does); the default profile
# keeps hypothesis' randomized exploration for local runs.

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=1000,
    max_examples=30,
    suppress_health_check=[HealthCheck.too_slow],
)

# The "crosshair" profile swaps random example generation for the
# solver-backed hypothesis-crosshair backend: properties run on symbolic
# inputs and an SMT solver hunts for falsifying assignments instead of
# sampling for them.  The backend is an optional extra (install with
# `pip install .[verify]`; the scheduled verify workflow does) — when it
# is absent the profile still registers with the same bounds so
# HYPOTHESIS_PROFILE=crosshair runs everywhere, falling back to the
# regular generator.  Examples are few and the deadline is off because
# symbolic execution is orders of magnitude slower per example.
_CROSSHAIR_BOUNDS = dict(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=list(HealthCheck),
)
try:
    import hypothesis_crosshair  # noqa: F401 — registers the backend

    settings.register_profile(
        "crosshair", backend="crosshair", **_CROSSHAIR_BOUNDS
    )
except ImportError:
    settings.register_profile("crosshair", **_CROSSHAIR_BOUNDS)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


# ---------------------------------------------------------------------------
# Vocabularies and structures
# ---------------------------------------------------------------------------

def vocabularies(
    max_symbols: int = 2, max_arity: int = 3
) -> st.SearchStrategy[Vocabulary]:
    """Small random vocabularies R0, R1, … with arities in 1..max_arity."""

    def build(arities: list[int]) -> Vocabulary:
        return Vocabulary(
            RelationSymbol(f"R{i}", arity)
            for i, arity in enumerate(arities)
        )

    return st.lists(
        st.integers(min_value=1, max_value=max_arity),
        min_size=1,
        max_size=max_symbols,
    ).map(build)


@st.composite
def structures(
    draw,
    vocabulary: Vocabulary | None = None,
    max_elements: int = 5,
    max_facts: int = 6,
) -> Structure:
    """Random small structures, optionally over a fixed vocabulary."""
    if vocabulary is None:
        vocabulary = draw(vocabularies())
    n = draw(st.integers(min_value=1, max_value=max_elements))
    relations = {}
    for symbol in vocabulary:
        count = draw(st.integers(min_value=0, max_value=max_facts))
        facts = set()
        for _ in range(count):
            facts.add(
                tuple(
                    draw(st.integers(min_value=0, max_value=n - 1))
                    for _ in range(symbol.arity)
                )
            )
        relations[symbol.name] = facts
    return Structure(vocabulary, range(n), relations)


@st.composite
def structure_pairs(
    draw, max_elements: int = 4, max_facts: int = 5
) -> tuple[Structure, Structure]:
    """A pair of structures over one shared vocabulary."""
    vocabulary = draw(vocabularies())
    a = draw(structures(vocabulary, max_elements, max_facts))
    b = draw(structures(vocabulary, max_elements, max_facts))
    return a, b


# ---------------------------------------------------------------------------
# Conjunctive queries
# ---------------------------------------------------------------------------

@st.composite
def conjunctive_queries(
    draw,
    vocabulary: Vocabulary | None = None,
    max_variables: int = 4,
    max_atoms: int = 4,
    head_width: int | None = None,
    max_head: int = 2,
) -> ConjunctiveQuery:
    """Random small conjunctive queries over the vocabularies() stream.

    Bodies draw atoms over a shared variable pool (so subgoals overlap and
    containment/minimization have something to do); heads draw from the
    same pool, repetitions allowed.  ``head_width`` pins the arity (use it
    to generate containment-compatible pairs); otherwise the head has up
    to ``max_head`` variables, including the Boolean ``()`` case.  Sizes
    stay small because the properties run exponential oracles (cores,
    atom-removal minimization) on every example.
    """
    if vocabulary is None:
        vocabulary = draw(vocabularies(max_symbols=2, max_arity=2))
    num_variables = draw(st.integers(min_value=1, max_value=max_variables))
    variables = [f"X{i}" for i in range(num_variables)]
    symbols = list(vocabulary)
    num_atoms = draw(st.integers(min_value=1, max_value=max_atoms))
    atoms = []
    for _ in range(num_atoms):
        symbol = draw(st.sampled_from(symbols))
        atoms.append(
            Atom(
                symbol.name,
                tuple(
                    draw(st.sampled_from(variables))
                    for _ in range(symbol.arity)
                ),
            )
        )
    if head_width is None:
        head_width = draw(st.integers(min_value=0, max_value=max_head))
    head = tuple(
        draw(st.sampled_from(variables)) for _ in range(head_width)
    )
    return ConjunctiveQuery(head, atoms)


@st.composite
def query_pairs(
    draw, max_variables: int = 4, max_atoms: int = 3
) -> tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """Two containment-compatible queries (shared vocabulary and arity)."""
    vocabulary = draw(vocabularies(max_symbols=2, max_arity=2))
    head_width = draw(st.integers(min_value=0, max_value=1))
    q1 = draw(
        conjunctive_queries(
            vocabulary, max_variables, max_atoms, head_width=head_width
        )
    )
    q2 = draw(
        conjunctive_queries(
            vocabulary, max_variables, max_atoms, head_width=head_width
        )
    )
    return q1, q2


# ---------------------------------------------------------------------------
# Boolean relations, optionally closed into a Schaefer class
# ---------------------------------------------------------------------------

def _closed(tuples: set, operation, op_arity: int) -> frozenset:
    closed = set(tuples)
    while True:
        if op_arity == 2:
            new = {operation(a, b) for a in closed for b in closed}
        else:
            new = {
                operation(a, b, c)
                for a in closed
                for b in closed
                for c in closed
            }
        if new <= closed:
            return frozenset(closed)
        closed |= new


@st.composite
def boolean_relations(
    draw,
    max_arity: int = 4,
    closure: str | None = None,
    allow_empty: bool = True,
) -> BooleanRelation:
    """Random Boolean relations; ``closure`` forces a Schaefer class."""
    arity = draw(st.integers(min_value=1, max_value=max_arity))
    min_tuples = 0 if allow_empty else 1
    raw = draw(
        st.sets(
            st.tuples(
                *[st.integers(min_value=0, max_value=1)] * arity
            ),
            min_size=min_tuples,
            max_size=min(6, 2**arity),
        )
    )
    operations = {
        "horn": (tuple_and, 2),
        "dual_horn": (tuple_or, 2),
        "bijunctive": (tuple_majority, 3),
        "affine": (tuple_xor3, 3),
    }
    if closure is not None and raw:
        operation, op_arity = operations[closure]
        raw = set(_closed(raw, operation, op_arity))
    return BooleanRelation(arity, raw)


# ---------------------------------------------------------------------------
# Datalog programs and CSP templates
# ---------------------------------------------------------------------------

@st.composite
def datalog_programs(
    draw,
    max_rules: int = 3,
    max_body_atoms: int = 3,
    max_variables: int = 4,
    max_arity: int = 2,
) -> DatalogProgram:
    """Random small, always-valid Datalog programs.

    Predicate arities are fixed up front (E* extensional, P* intensional)
    so every program passes arity validation; the goal is the first
    rule's head, so it is always an IDB.  The shapes cover what the
    evaluators must handle: recursion and mutual recursion (IDB body
    atoms), body-less rules, *unsafe* head variables (head variables the
    body does not bind — they range over the active domain), repeated
    variables in heads and bodies, and 0-ary IDB predicates (Boolean
    goals).  Sizes stay small because the properties cross-evaluate
    every example under four engine/method combinations.
    """
    edb_arities = {
        f"E{i}": draw(st.integers(min_value=1, max_value=max_arity))
        for i in range(draw(st.integers(min_value=1, max_value=2)))
    }
    idb_arities = {
        f"P{i}": draw(st.integers(min_value=0, max_value=max_arity))
        for i in range(draw(st.integers(min_value=1, max_value=2)))
    }
    arities = {**edb_arities, **idb_arities}
    predicates = sorted(arities)
    idb_names = sorted(idb_arities)
    variables = [f"V{i}" for i in range(max_variables)]
    rules = []
    for index in range(draw(st.integers(min_value=1, max_value=max_rules))):
        head_name = (
            idb_names[0] if index == 0 else draw(st.sampled_from(idb_names))
        )
        head = Atom(
            head_name,
            tuple(
                draw(st.sampled_from(variables))
                for _ in range(idb_arities[head_name])
            ),
        )
        body = tuple(
            Atom(
                name,
                tuple(
                    draw(st.sampled_from(variables))
                    for _ in range(arities[name])
                ),
            )
            for name in (
                draw(st.sampled_from(predicates))
                for _ in range(
                    draw(st.integers(min_value=0, max_value=max_body_atoms))
                )
            )
        )
        rules.append(Rule(head, body))
    return DatalogProgram(rules, rules[0].head.relation)


@st.composite
def csp_templates(
    draw, max_elements: int = 3, max_arity: int = 2, max_facts: int = 4
) -> Structure:
    """Small nonempty templates B for canonical programs ρ_B.

    Bounded hard: ρ_B has |B|^k IDB predicates, and the Theorem 4.2
    properties evaluate it with the legacy engine as the oracle.
    """
    vocabulary = draw(vocabularies(max_symbols=2, max_arity=max_arity))
    return draw(
        structures(
            vocabulary, max_elements=max_elements, max_facts=max_facts
        )
    )


@st.composite
def boolean_structures(
    draw,
    closure: str | None = None,
    max_arity: int = 3,
    vocabulary: Vocabulary | None = None,
) -> Structure:
    """Random Boolean structures (universe {0, 1})."""
    if vocabulary is None:
        vocabulary = draw(vocabularies(max_symbols=2, max_arity=max_arity))
    relations = {}
    for symbol in vocabulary:
        relation = draw(
            boolean_relations(max_arity=symbol.arity, closure=closure)
        )
        # Regenerate at the right arity if needed.
        if relation.arity != symbol.arity:
            tuples = {
                t[: symbol.arity]
                if len(t) >= symbol.arity
                else t + (0,) * (symbol.arity - len(t))
                for t in relation.tuples
            }
            if closure is not None and tuples:
                operations = {
                    "horn": (tuple_and, 2),
                    "dual_horn": (tuple_or, 2),
                    "bijunctive": (tuple_majority, 3),
                    "affine": (tuple_xor3, 3),
                }
                operation, op_arity = operations[closure]
                tuples = set(_closed(tuples, operation, op_arity))
            relation = BooleanRelation(symbol.arity, tuples)
        relations[symbol.name] = set(relation.tuples)
    return Structure(vocabulary, {0, 1}, relations)
