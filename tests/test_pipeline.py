"""Tests for the pluggable solver pipeline (repro.core.pipeline).

Covers: each built-in strategy's ``applies()`` on hand-built structures,
routing order vs the seed dispatcher, fingerprint-cache behaviour,
``solve_many`` vs per-instance ``solve``, the registry operations, and
backward compatibility of the ``repro.core.solver`` façade.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.pipeline import (
    DEFAULT_WIDTH_THRESHOLD,
    Solution,
    SolveContext,
    SolverPipeline,
    Strategy,
    StructureCache,
    default_pipeline,
)
from repro.core.strategies import (
    AffineStrategy,
    BacktrackingStrategy,
    BijunctiveStrategy,
    DualHornStrategy,
    HornStrategy,
    OneValidStrategy,
    PebbleRefutationStrategy,
    TreewidthStrategy,
    ZeroValidStrategy,
    default_strategies,
)
from repro.boolean.booleanize import booleanize
from repro.structures.fingerprint import canonical_fingerprint
from repro.structures.graphs import (
    clique,
    cycle,
    directed_cycle,
    random_digraph,
)
from repro.structures.homomorphism import (
    homomorphism_exists,
    is_homomorphism,
)
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

from conftest import structure_pairs

BINARY = Vocabulary.from_arities({"R": 2})

#: The seed dispatcher's routing order, which the pipeline must preserve.
#: The width-planner is the one post-seed addition: it sits before the
#: fixed structural routes but declines every solve unless ``plan=True``,
#: so default routing is unchanged.
SEED_ORDER = (
    "zero-valid",
    "one-valid",
    "horn-direct",
    "dual-horn-direct",
    "bijunctive-direct",
    "affine-gf2",
    "width-planner",
    "treewidth-dp",
    "pebble-refutation",
    "backtracking",
)


def boolean_target(*facts: tuple[int, int]) -> Structure:
    return Structure(BINARY, {0, 1}, {"R": set(facts)})


def binary_source(n: int) -> Structure:
    """A directed n-cycle over the same vocabulary as boolean_target."""
    return Structure(
        BINARY, range(n), {"R": {(i, (i + 1) % n) for i in range(n)}}
    )


def context(**kwargs) -> SolveContext:
    return SolveContext(cache=StructureCache(), **kwargs)


# ---------------------------------------------------------------------------
# applies() of each built-in strategy on hand-built structures
# ---------------------------------------------------------------------------

class TestApplies:
    def test_zero_valid(self):
        target = boolean_target((0, 0), (0, 1))
        source = Structure(BINARY, range(3), {"R": {(0, 1)}})
        assert ZeroValidStrategy().applies(source, target, context())
        assert not OneValidStrategy().applies(source, target, context())

    def test_one_valid(self):
        target = boolean_target((1, 1), (0, 1))
        source = Structure(BINARY, range(3), {"R": {(0, 1)}})
        assert OneValidStrategy().applies(source, target, context())
        assert not ZeroValidStrategy().applies(source, target, context())

    def test_horn(self):
        # {(0,1), (1,1)} is closed under coordinatewise AND
        target = boolean_target((0, 1), (1, 1))
        source = binary_source(4)
        assert HornStrategy().applies(source, target, context())

    def test_dual_horn(self):
        # {(0,0), (0,1)} is closed under coordinatewise OR
        target = boolean_target((0, 0), (0, 1))
        source = binary_source(4)
        assert DualHornStrategy().applies(source, target, context())

    def test_bijunctive_and_affine_on_disequality(self):
        # x != y is majority-closed and affine (x + y = 1 over GF(2))
        target = boolean_target((0, 1), (1, 0))
        source = binary_source(4)
        assert BijunctiveStrategy().applies(source, target, context())
        assert AffineStrategy().applies(source, target, context())

    def test_boolean_strategies_reject_non_boolean_targets(self):
        source, target = cycle(4), clique(3)
        for strategy in (
            ZeroValidStrategy(),
            OneValidStrategy(),
            HornStrategy(),
            DualHornStrategy(),
            BijunctiveStrategy(),
            AffineStrategy(),
        ):
            assert not strategy.applies(source, target, context())

    def test_treewidth_width_threshold(self):
        ctx = context(width_threshold=DEFAULT_WIDTH_THRESHOLD)
        assert TreewidthStrategy().applies(cycle(6), clique(3), ctx)
        tight = context(width_threshold=2)
        assert not TreewidthStrategy().applies(clique(6), clique(6), tight)

    def test_pebble_opt_in(self):
        assert not PebbleRefutationStrategy().applies(
            clique(4), clique(3), context()
        )

    def test_pebble_applies_only_when_spoiler_wins(self):
        # K4 -> K3 is 3-consistent, so the Spoiler needs all 4 pebbles
        assert PebbleRefutationStrategy().applies(
            clique(4), clique(3), context(pebble_k=4)
        )
        assert not PebbleRefutationStrategy().applies(
            clique(4), clique(3), context(pebble_k=2)
        )

    def test_backtracking_is_total(self):
        assert BacktrackingStrategy().applies(
            clique(6), clique(6), context()
        )

    def test_pebble_run_without_applies_replays_the_game(self):
        # run() called directly must not fabricate a refutation
        strategy = PebbleRefutationStrategy()
        winning = context(pebble_k=4)
        assert strategy.run(clique(4), clique(3), winning).homomorphism is None
        losing = context(pebble_k=2)
        with pytest.raises(RuntimeError):
            strategy.run(clique(4), clique(3), losing)
        with pytest.raises(RuntimeError):
            strategy.run(clique(4), clique(3), context())  # no pebble count


# ---------------------------------------------------------------------------
# Routing matches the seed dispatcher
# ---------------------------------------------------------------------------

class TestRouting:
    def test_default_order_is_the_seed_order(self):
        assert SolverPipeline().strategy_names == SEED_ORDER
        assert tuple(
            s.name for s in default_strategies()
        ) == SEED_ORDER

    def test_trivial_routing(self):
        target = boolean_target((0, 0))
        source = Structure(BINARY, range(3), {"R": {(0, 1)}})
        solution = SolverPipeline().solve(source, target)
        assert solution.strategy == "zero-valid"
        assert solution.exists

    def test_affine_routing(self):
        bz = booleanize(random_digraph(5, 0.3, seed=1), directed_cycle(4))
        solution = SolverPipeline().solve(bz.source, bz.target)
        assert solution.strategy == "affine-gf2"

    def test_treewidth_routing(self):
        solution = SolverPipeline().solve(cycle(6), clique(3))
        assert solution.strategy.startswith("treewidth-dp")
        assert solution.exists

    def test_backtracking_fallback(self):
        solution = SolverPipeline().solve(
            clique(6), clique(6), width_threshold=2
        )
        assert solution.strategy == "backtracking"
        assert solution.exists

    def test_pebble_refutation(self):
        solution = SolverPipeline().solve(
            clique(4), clique(3), width_threshold=1,
            try_pebble_refutation=4,
        )
        assert solution.strategy == "pebble-refutation(k=4)"
        assert not solution.exists

    def test_pebble_fall_through(self):
        solution = SolverPipeline().solve(
            clique(4), clique(3), width_threshold=1,
            try_pebble_refutation=2,
        )
        assert solution.strategy == "backtracking"
        assert not solution.exists

    def test_attempted_is_a_prefix_of_the_registry(self):
        pipeline = SolverPipeline()
        solution = pipeline.solve(cycle(6), clique(3))
        attempted = solution.stats.attempted
        assert attempted == pipeline.strategy_names[: len(attempted)]
        # the last consulted strategy is the one that ran
        assert solution.strategy.startswith(attempted[-1])

    @given(structure_pairs(max_elements=4, max_facts=5))
    @settings(max_examples=40, deadline=None)
    def test_always_correct(self, pair):
        a, b = pair
        solution = SolverPipeline().solve(a, b)
        assert solution.exists == homomorphism_exists(a, b)
        if solution.exists:
            assert is_homomorphism(solution.homomorphism, a, b)


# ---------------------------------------------------------------------------
# The fingerprint cache
# ---------------------------------------------------------------------------

class TestCache:
    def test_repeated_boolean_target_hits(self):
        pipeline = SolverPipeline()
        target = boolean_target((0, 1), (1, 0))
        first = pipeline.solve(binary_source(4), target)
        assert first.stats.cache_misses >= 1
        assert first.stats.cache_hits == 0
        second = pipeline.solve(binary_source(6), target)
        assert second.stats.cache_hits >= 1
        assert second.stats.cache_misses == 0

    def test_structurally_equal_targets_share_cache_entries(self):
        pipeline = SolverPipeline()
        pipeline.solve(binary_source(4), boolean_target((0, 1), (1, 0)))
        # a separately-built but equal target must hit, not miss
        rebuilt = boolean_target((1, 0), (0, 1))
        solution = pipeline.solve(binary_source(4), rebuilt)
        assert solution.stats.cache_hits >= 1
        assert solution.stats.cache_misses == 0

    def test_repeated_source_decomposition_hits(self):
        pipeline = SolverPipeline()
        pipeline.solve(cycle(6), clique(3))
        again = pipeline.solve(cycle(6), clique(4))
        assert again.stats.cache_hits >= 1

    def test_fingerprint_is_canonical(self):
        a = boolean_target((0, 1), (1, 0))
        b = boolean_target((1, 0), (0, 1))
        assert canonical_fingerprint(a) == canonical_fingerprint(b)
        c = boolean_target((0, 1))
        assert canonical_fingerprint(a) != canonical_fingerprint(c)

    def test_lru_eviction_is_bounded(self):
        cache = StructureCache(maxsize=2)
        targets = [
            boolean_target((0, 1)),
            boolean_target((1, 0)),
            boolean_target((1, 1)),
        ]
        for target in targets:
            cache.classification(target)
        # the first target was evicted: re-asking misses again
        misses_before = cache.stats.misses
        cache.classification(targets[0])
        assert cache.stats.misses == misses_before + 1
        # the most recent one is still cached
        hits_before = cache.stats.hits
        cache.classification(targets[2])
        assert cache.stats.hits == hits_before + 1

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            StructureCache(maxsize=0)

    def test_context_memo_distinguishes_structures(self):
        ctx = context()
        horn = boolean_target((0, 1), (1, 1))
        zero = boolean_target((0, 0))
        first = ctx.classification(horn)
        second = ctx.classification(zero)
        assert first != second
        # and repeated asks stay memoized per structure
        assert ctx.classification(horn) == first

    def test_clear_resets_counters_and_entries(self):
        cache = StructureCache()
        cache.classification(boolean_target((0, 1)))
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0

    def test_isolated_pipelines_do_not_share_cache(self):
        target = boolean_target((0, 1), (1, 0))
        SolverPipeline().solve(binary_source(4), target)
        fresh = SolverPipeline().solve(binary_source(4), target)
        assert fresh.stats.cache_hits == 0

    def test_default_pipeline_shares_one_cache(self):
        target = boolean_target(
            (0, 1), (1, 0), (1, 1)
        )
        from repro.core.pipeline import solve as module_solve

        module_solve(binary_source(4), target)
        warm = module_solve(binary_source(6), target)
        assert warm.stats.cache_hits >= 1
        assert default_pipeline() is default_pipeline()


# ---------------------------------------------------------------------------
# The batch API
# ---------------------------------------------------------------------------

class TestSolveMany:
    def test_agrees_with_per_instance_solve(self):
        pairs = [
            (cycle(4), clique(2)),
            (cycle(5), clique(2)),
            (cycle(6), clique(3)),
            (clique(4), clique(3)),
        ]
        batch = SolverPipeline().solve_many(pairs)
        singles = [SolverPipeline().solve(s, t) for s, t in pairs]
        assert len(batch) == len(singles)
        for got, want in zip(batch, singles):
            assert got.strategy == want.strategy
            assert got.exists == want.exists

    def test_results_in_input_order(self):
        pairs = [
            (cycle(6), clique(3)),   # sat, treewidth
            (cycle(5), clique(2)),   # unsat, boolean
            (cycle(4), clique(2)),   # sat, boolean
        ]
        results = SolverPipeline().solve_many(pairs)
        assert [r.exists for r in results] == [True, False, True]

    def test_shared_targets_classified_once(self):
        target = boolean_target((0, 1), (1, 0))
        pairs = [(binary_source(n), target) for n in (3, 4, 5, 6)]
        results = SolverPipeline().solve_many(pairs)
        # one miss for the first instance of the group, hits afterwards
        assert sum(r.stats.cache_misses for r in results) == 1
        assert all(r.stats.cache_hits >= 1 for r in results[1:])

    def test_empty_batch(self):
        assert SolverPipeline().solve_many([]) == []

    def test_options_forwarded(self):
        results = SolverPipeline().solve_many(
            [(clique(4), clique(3))],
            width_threshold=1,
            try_pebble_refutation=4,
        )
        assert results[0].strategy == "pebble-refutation(k=4)"


# ---------------------------------------------------------------------------
# Registry operations
# ---------------------------------------------------------------------------

class _ConstantStrategy:
    """Test double: claims every instance, maps everything to ``value``."""

    def __init__(self, name="constant", value=0):
        self.name = name
        self.value = value

    def applies(self, source, target, context):
        return True

    def run(self, source, target, context):
        return Solution(
            {e: self.value for e in source.universe}, self.name
        )


class TestRegistry:
    def test_register_default_appends(self):
        pipeline = SolverPipeline()
        pipeline.register(_ConstantStrategy())
        assert pipeline.strategy_names[-1] == "constant"

    def test_register_before_takes_priority(self):
        pipeline = SolverPipeline()
        pipeline.register(_ConstantStrategy(), before="zero-valid")
        solution = pipeline.solve(cycle(4), clique(2))
        assert solution.strategy == "constant"

    def test_register_after(self):
        pipeline = SolverPipeline()
        pipeline.register(_ConstantStrategy(), after="treewidth-dp")
        names = pipeline.strategy_names
        assert names.index("constant") == names.index("treewidth-dp") + 1

    def test_register_before_and_after_rejected(self):
        with pytest.raises(ValueError):
            SolverPipeline().register(
                _ConstantStrategy(), before="zero-valid", after="one-valid"
            )

    def test_unregister(self):
        pipeline = SolverPipeline()
        removed = pipeline.unregister("treewidth-dp")
        assert removed.name == "treewidth-dp"
        assert "treewidth-dp" not in pipeline.strategy_names
        # without the treewidth route, C6 -> K3 falls to backtracking
        assert pipeline.solve(cycle(6), clique(3)).strategy == "backtracking"

    def test_unregister_unknown_raises(self):
        with pytest.raises(KeyError):
            SolverPipeline().unregister("no-such-strategy")

    def test_strategies_satisfy_the_protocol(self):
        for strategy in default_strategies():
            assert isinstance(strategy, Strategy)


# ---------------------------------------------------------------------------
# The solver façade stays backward compatible
# ---------------------------------------------------------------------------

class TestFacade:
    def test_seed_imports_still_work(self):
        from repro.core.solver import (  # noqa: F401
            DEFAULT_WIDTH_THRESHOLD,
            Solution,
            solve,
        )

    def test_solution_positional_construction(self):
        from repro.core.solver import Solution as FacadeSolution

        solution = FacadeSolution({0: 1}, "test")
        assert solution.exists
        assert solution.stats is None
        assert not FacadeSolution(None, "test").exists

    def test_facade_solve_matches_pipeline(self):
        from repro.core.solver import solve as facade_solve

        facade = facade_solve(cycle(6), clique(3))
        fresh = SolverPipeline().solve(cycle(6), clique(3))
        assert facade.strategy == fresh.strategy
        assert facade.exists == fresh.exists

    def test_facade_accepts_seed_keywords(self):
        from repro.core.solver import solve as facade_solve

        solution = facade_solve(
            clique(4), clique(3), width_threshold=1,
            try_pebble_refutation=2,
        )
        assert solution.strategy == "backtracking"

    def test_facade_solve_attaches_stats(self):
        from repro.core.solver import solve as facade_solve

        solution = facade_solve(cycle(4), clique(2))
        assert solution.stats is not None
        assert "total" in solution.stats.timings
