"""Unit tests for vocabularies and relation symbols."""

import pytest

from repro.exceptions import VocabularyError
from repro.structures.vocabulary import RelationSymbol, Vocabulary


class TestRelationSymbol:
    def test_basic_fields(self):
        symbol = RelationSymbol("E", 2)
        assert symbol.name == "E"
        assert symbol.arity == 2

    def test_str(self):
        assert str(RelationSymbol("E", 2)) == "E/2"

    def test_equality_and_hash(self):
        assert RelationSymbol("E", 2) == RelationSymbol("E", 2)
        assert RelationSymbol("E", 2) != RelationSymbol("E", 3)
        assert hash(RelationSymbol("E", 2)) == hash(RelationSymbol("E", 2))

    def test_empty_name_rejected(self):
        with pytest.raises(VocabularyError):
            RelationSymbol("", 1)

    def test_negative_arity_rejected(self):
        with pytest.raises(VocabularyError):
            RelationSymbol("E", -1)

    def test_nullary_allowed(self):
        assert RelationSymbol("S", 0).arity == 0


class TestVocabulary:
    def test_empty(self):
        vocabulary = Vocabulary()
        assert len(vocabulary) == 0
        assert vocabulary.max_arity == 0
        assert list(vocabulary) == []

    def test_from_arities(self):
        vocabulary = Vocabulary.from_arities({"E": 2, "P": 1})
        assert vocabulary.arity("E") == 2
        assert vocabulary.arity("P") == 1
        assert len(vocabulary) == 2

    def test_deterministic_order(self):
        vocabulary = Vocabulary.from_arities({"Z": 1, "A": 2, "M": 3})
        assert vocabulary.names == ("A", "M", "Z")

    def test_clashing_arities_rejected(self):
        with pytest.raises(VocabularyError):
            Vocabulary([RelationSymbol("E", 2), RelationSymbol("E", 3)])

    def test_duplicate_symbols_deduplicated(self):
        vocabulary = Vocabulary(
            [RelationSymbol("E", 2), RelationSymbol("E", 2)]
        )
        assert len(vocabulary) == 1

    def test_contains_symbol_and_name(self):
        vocabulary = Vocabulary.from_arities({"E": 2})
        assert RelationSymbol("E", 2) in vocabulary
        assert RelationSymbol("E", 3) not in vocabulary
        assert "E" in vocabulary
        assert "F" not in vocabulary
        assert 42 not in vocabulary

    def test_getitem_and_keyerror(self):
        vocabulary = Vocabulary.from_arities({"E": 2})
        assert vocabulary["E"].arity == 2
        with pytest.raises(KeyError):
            vocabulary["F"]

    def test_get_returns_none_for_missing(self):
        assert Vocabulary().get("E") is None

    def test_union(self):
        v1 = Vocabulary.from_arities({"E": 2})
        v2 = Vocabulary.from_arities({"P": 1})
        union = v1.union(v2)
        assert "E" in union and "P" in union

    def test_union_clash_rejected(self):
        v1 = Vocabulary.from_arities({"E": 2})
        v2 = Vocabulary.from_arities({"E": 3})
        with pytest.raises(VocabularyError):
            v1.union(v2)

    def test_union_idempotent_on_shared_symbols(self):
        v1 = Vocabulary.from_arities({"E": 2, "P": 1})
        v2 = Vocabulary.from_arities({"E": 2})
        assert v1.union(v2) == v1

    def test_issubset(self):
        small = Vocabulary.from_arities({"E": 2})
        big = Vocabulary.from_arities({"E": 2, "P": 1})
        assert small.issubset(big)
        assert not big.issubset(small)

    def test_equality_and_hash(self):
        v1 = Vocabulary.from_arities({"E": 2, "P": 1})
        v2 = Vocabulary.from_arities({"P": 1, "E": 2})
        assert v1 == v2
        assert hash(v1) == hash(v2)
        assert v1 != Vocabulary.from_arities({"E": 2})

    def test_max_arity(self):
        assert Vocabulary.from_arities({"E": 2, "T": 5}).max_arity == 5

    def test_renamed(self):
        vocabulary = Vocabulary.from_arities({"E": 2, "P": 1})
        renamed = vocabulary.renamed({"E": "F"})
        assert "F" in renamed and "P" in renamed and "E" not in renamed
        assert renamed.arity("F") == 2

    def test_repr_mentions_symbols(self):
        assert "E/2" in repr(Vocabulary.from_arities({"E": 2}))
