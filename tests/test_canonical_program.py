"""Tests for the canonical program ρ_B (Theorem 4.7.2).

The theorem's content is that evaluating ρ_B on A says exactly whether the
Spoiler wins the existential k-pebble game — cross-checked here against
both independent game implementations.
"""

import pytest
from hypothesis import given, settings

from repro.datalog.canonical_program import canonical_program
from repro.datalog.evaluation import goal_holds
from repro.pebble.game import spoiler_wins
from repro.pebble.kconsistency import strong_k_consistent
from repro.structures.graphs import clique, cycle, path, random_graph
from repro.structures.homomorphism import homomorphism_exists
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

from conftest import structures

BINARY = Vocabulary.from_arities({"R": 2})


class TestConstruction:
    def test_program_is_k_datalog(self):
        program = canonical_program(clique(2), 2)
        assert program.is_k_datalog(2)

    def test_idb_count(self):
        program = canonical_program(clique(2), 2)
        # one T_b per tuple of B^k, plus the goal S
        assert len(program.idb_predicates) == 2**2 + 1

    def test_goal_named_s(self):
        program = canonical_program(clique(2), 2)
        assert program.goal == "S"

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            canonical_program(clique(2), 0)
        with pytest.raises(ValueError):
            canonical_program(Structure(BINARY), 2)


class TestAgainstGameSolvers:
    def test_two_colorability_k2(self):
        program = canonical_program(clique(2), 2)
        for seed in range(10):
            g = random_graph(5, 0.5, seed=seed)
            assert goal_holds(program, g) == spoiler_wins(g, clique(2), 2)

    def test_two_colorability_k3_decides_csp(self):
        program = canonical_program(clique(2), 3)
        for seed in range(6):
            g = random_graph(5, 0.45, seed=seed)
            datalog_says_no_hom = goal_holds(program, g)
            assert datalog_says_no_hom == (
                not homomorphism_exists(g, clique(2))
            )

    def test_path_targets(self):
        target = path(2)  # one symmetric edge plus an extra vertex? no: 2 nodes
        program = canonical_program(target, 2)
        for source in (path(4), cycle(4), cycle(5)):
            assert goal_holds(program, source) == spoiler_wins(
                source, target, 2
            )

    @given(structures(BINARY, max_elements=3, max_facts=4),
           structures(BINARY, max_elements=2, max_facts=3))
    @settings(max_examples=25, deadline=None)
    def test_random_agreement_k2(self, source, target):
        if not target.universe:
            return
        program = canonical_program(target, 2)
        assert goal_holds(program, source) == spoiler_wins(
            source, target, 2
        )
        assert goal_holds(program, source) == (
            not strong_k_consistent(source, target, 2)
        )
