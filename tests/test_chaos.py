"""Deterministic chaos suite for the resilient solve service.

Every test here drives the real service against the seeded
fault-injection harness (:mod:`repro.faultinject`) and asserts the
*termination invariant*: every admitted request terminates with either a
parity-correct :class:`Solution` or a typed
:class:`~repro.exceptions.ReproError` — never a hang, a lost future, a
bare ``CancelledError``, or a stale coalescing entry — and the service
keeps serving fresh traffic after the storm.

The storm tests replay the exact same fault schedule per seed (which
*request* a fault lands on still depends on scheduling, hence
invariant-style assertions); the degradation tests pin the individual
breaker paths with probability-1.0 faults, which are fully
deterministic.  ``REPRO_CHAOS_SEED`` opts one extra randomized storm in
(the CI chaos-smoke job passes a fresh seed and echoes it, so any
failure is replayable).
"""

from __future__ import annotations

import asyncio
import os
import random
import time

import pytest

from repro import faultinject
from repro.exceptions import (
    FaultInjectedError,
    ReproError,
    ServiceClosedError,
    ServiceOverloadedError,
    SolveTimeoutError,
)
from repro.csp.generators import random_schaefer_target, random_structure
from repro.faultinject import FaultPlan
from repro.service import Priority, ServiceConfig, SolveService
from repro.structures.graphs import clique, random_graph
from repro.structures.homomorphism import is_homomorphism
from repro.structures.vocabulary import Vocabulary

BINARY = Vocabulary.from_arities({"R": 2})

#: The three replayed storm seeds of the CI chaos-smoke job.
FIXED_SEEDS = (101, 202, 303)

#: Hard cap per storm: converts a termination-invariant violation (a
#: hung future) into a test failure instead of a hung CI job.
STORM_TIMEOUT = 120.0


def cheap_instance(seed: int = 0):
    return (
        random_structure(BINARY, 6, 10, seed=seed),
        random_schaefer_target(BINARY, 3, "horn", seed=seed + 1),
    )


def heavy_instance(seed: int = 0):
    return clique(4), random_graph(12, 0.5, seed=seed)


def slow_instance():
    """Unsatisfiable clique refutation taking a few hundred ms."""
    return clique(7), random_graph(26, 0.55, seed=2)


def _corpus():
    """A 20-instance mix covering every service route.

    Cheap Schaefer instances (thread backend, DP/search routes), small
    clique searches (backtracking), and dense-graph colorings the
    planner sends through the canonical-Datalog plane — so a storm
    exercises the kernel, decomp, and datalog fault points alike.
    """
    instances = [cheap_instance(seed) for seed in range(12)]
    instances += [heavy_instance(seed) for seed in range(4)]
    instances += [
        (clique(5), clique(3)),
        (clique(6), clique(3)),
        (random_graph(10, 0.8, seed=0), clique(3)),
        (random_graph(10, 0.8, seed=1), clique(3)),
    ]
    return instances


def _expected(corpus):
    """Ground truth, computed fault-free before any plan is installed."""
    assert faultinject.current() is None
    pipeline = SolveService(ServiceConfig()).pipeline
    return [pipeline.solve(source, target).exists for source, target in corpus]


def _check_invariant(indexed_results, corpus, expected):
    """Every result is a parity-correct Solution or a typed ReproError."""
    for index, result in indexed_results:
        source, target = corpus[index]
        if isinstance(result, BaseException):
            assert isinstance(result, ReproError), (
                f"request {index} escaped with an untyped "
                f"{type(result).__name__}: {result!r}"
            )
        else:
            assert result.exists == expected[index], (
                f"request {index} lost parity under faults: "
                f"{result.strategy}"
            )
            if result.homomorphism is not None:
                assert is_homomorphism(result.homomorphism, source, target)


def _run_thread_storm(seed: int) -> None:
    """60 requests against the thread backend under mixed faults."""
    corpus = _corpus()
    expected = _expected(corpus)
    plan = FaultPlan(
        seed,
        {
            "kernel.compile.raise": 0.10,
            "service.dispatch.delay": 0.25,
            "datalogk.budget": 0.35,
            "decomp.budget": 0.15,
        },
        delay_ms=(0.5, 3.0),
    )
    config = ServiceConfig(
        thread_workers=2,
        process_workers=0,
        retry_budget=2,
        breaker_threshold=3,
        breaker_cooldown=0.05,
    )

    async def scenario():
        async with SolveService(config) as service:
            rng = random.Random(seed)
            indexed = []
            waiters = []
            for _ in range(3):
                for index, (source, target) in enumerate(corpus):
                    timeout = rng.choice([None, None, None, 2.0, 0.05])
                    # The dense tail of the corpus routes through the
                    # canonical-Datalog plane; ask for it so the storm
                    # reaches the datalogk.budget fault point.
                    if index % 4 == 0 or index >= 16:
                        waiter = service.submit_datalog(
                            source, target, k=2, timeout=timeout
                        )
                    else:
                        waiter = service.submit(
                            source, target, timeout=timeout
                        )
                    indexed.append(index)
                    waiters.append(waiter)
            results = await asyncio.gather(*waiters, return_exceptions=True)
            _check_invariant(zip(indexed, results), corpus, expected)
            # No stale coalescing entry survives the storm.
            assert not service._inflight
            # The service serves fresh traffic once the faults stop.
            faultinject.uninstall()
            for index in (0, 5, 13, 16):
                solution = await service.submit(*corpus[index])
                assert solution.exists == expected[index]
            stats = service.stats.snapshot()
            assert stats["submitted"] >= 64
            assert stats["completed"] >= 1

    faultinject.install(plan)
    try:
        asyncio.run(asyncio.wait_for(scenario(), STORM_TIMEOUT))
    finally:
        faultinject.uninstall()


class TestThreadChaos:
    @pytest.mark.parametrize("seed", FIXED_SEEDS)
    def test_storm_terminates_with_parity(self, seed):
        _run_thread_storm(seed)

    def test_randomized_seed_from_env(self):
        spec = os.environ.get("REPRO_CHAOS_SEED")
        if not spec:
            pytest.skip("set REPRO_CHAOS_SEED to run the randomized storm")
        seed = int(spec)
        print(f"\nREPRO_CHAOS_SEED={seed}  # replay: REPRO_CHAOS_SEED={seed}")
        _run_thread_storm(seed)


class TestProcessChaos:
    @pytest.mark.parametrize("seed", FIXED_SEEDS)
    def test_worker_kill_storm(self, seed):
        """Workers die abruptly mid-storm; the supervisor + retries keep
        every answer correct, and fresh traffic flows afterwards."""
        corpus = _corpus()[:6]
        expected = _expected(corpus)
        plan = FaultPlan(
            seed,
            {"worker.kill.before": 0.25, "worker.kill.during": 0.10},
            delay_ms=(1.0, 10.0),
        )
        config = ServiceConfig(
            thread_workers=2,
            process_workers=2,
            process_cost_threshold=0.0,
            retry_budget=3,
            breaker_threshold=4,
            breaker_cooldown=0.2,
            worker_restart_backoff=0.01,
        )

        async def scenario():
            async with SolveService(config) as service:
                indexed = [
                    index
                    for _ in range(2)
                    for index in range(len(corpus))
                ]
                waiters = [
                    service.submit(*corpus[index]) for index in indexed
                ]
                results = await asyncio.gather(
                    *waiters, return_exceptions=True
                )
                _check_invariant(zip(indexed, results), corpus, expected)
                assert not service._inflight
                # Disarm and verify recovery: armed workers can still die
                # once more, but any crash replaces them with a disarmed
                # pool (the env export is gone), so retries — or the open
                # breaker's thread fallback — must land every answer.
                faultinject.uninstall()
                for index, (source, target) in enumerate(corpus):
                    solution = await service.submit(source, target)
                    assert solution.exists == expected[index]
                # The flight recorder saw the whole storm: every pool
                # rebuild was preceded by an observed crash, every
                # restart and breaker transition left an event.
                counts = service.recorder.counts()
                stats = service.stats
                assert counts.get("worker.crash", 0) >= stats.worker_restarts
                assert (
                    counts.get("worker.restart", 0) == stats.worker_restarts
                )
                assert counts.get("breaker.transition", 0) == sum(
                    stats.breaker_transitions.values()
                )

        faultinject.install(plan, env=True)
        try:
            asyncio.run(asyncio.wait_for(scenario(), STORM_TIMEOUT))
        finally:
            faultinject.uninstall()


class TestBreakerDegradation:
    """Probability-1.0 faults: each breaker's degrade path, pinned."""

    def test_kernel_breaker_degrades_to_legacy_engine(self):
        first = cheap_instance(0)
        second = cheap_instance(1)
        expected_second = _expected([second])[0]
        config = ServiceConfig(
            thread_workers=2,
            process_workers=0,
            retry_budget=1,
            breaker_threshold=2,
            breaker_cooldown=60.0,
        )

        async def scenario():
            async with SolveService(config) as service:
                # Both attempts hit the injected compile fault, tripping
                # the kernel breaker (threshold 2) and failing typed.
                with pytest.raises(FaultInjectedError):
                    await service.submit(*first)
                assert service.stats.retries == 1
                assert (
                    service.stats.breaker_states.get("kernel") == "open"
                )
                # With the breaker open the next request bypasses the
                # compiled plane entirely — the legacy reference engine
                # answers exactly, despite compile still being poisoned.
                solution = await service.submit(*second)
                assert solution.strategy == "legacy-engine(kernel-breaker)"
                assert solution.exists == expected_second
                assert service.stats.degraded.get("kernel", 0) >= 1

        faultinject.install(FaultPlan(0, {"kernel.compile.raise": 1.0}))
        try:
            asyncio.run(asyncio.wait_for(scenario(), STORM_TIMEOUT))
        finally:
            faultinject.uninstall()

    def test_datalog_budget_degrades_to_planner_search(self):
        # clique(5) → clique(3) routes through the canonical-Datalog
        # plane (asserted below), where the injected budget breach fires.
        first = (clique(5), clique(3))
        second = (clique(6), clique(3))
        pipeline = SolveService(ServiceConfig()).pipeline
        baseline = pipeline.solve(
            *first, plan=True, try_canonical_datalog=2
        )
        assert "route=datalog" in baseline.strategy
        config = ServiceConfig(
            thread_workers=2,
            process_workers=0,
            retry_budget=2,
            breaker_threshold=1,
            breaker_cooldown=60.0,
        )

        async def scenario():
            async with SolveService(config) as service:
                # Attempt 1 breaches the budget; the retry strips the
                # canonical-Datalog ask and the planner's search answers
                # the same question — the request is rescued, not failed.
                solution = await service.submit_datalog(*first, k=2)
                assert solution.exists == baseline.exists
                assert service.stats.retries == 1
                assert service.stats.requests_rescued == 1
                assert (
                    service.stats.breaker_states.get("datalog") == "open"
                )
                # With the breaker open the ask is stripped *before* the
                # first attempt: no retry needed, still exact.
                solution = await service.submit_datalog(*second, k=2)
                assert not solution.exists  # K6 never maps into K3
                assert service.stats.degraded.get("datalog", 0) >= 1
                assert service.stats.retries == 1  # unchanged

        faultinject.install(FaultPlan(1, {"datalogk.budget": 1.0}))
        try:
            asyncio.run(asyncio.wait_for(scenario(), STORM_TIMEOUT))
        finally:
            faultinject.uninstall()

    def test_process_kill_storm_is_rescued_by_threads(self):
        source, target = heavy_instance(0)
        expected = _expected([(source, target)])[0]
        config = ServiceConfig(
            thread_workers=1,
            process_workers=1,
            process_cost_threshold=0.0,
            retry_budget=2,
            breaker_threshold=2,
            breaker_cooldown=60.0,
            worker_restart_backoff=0.01,
        )

        async def scenario():
            async with SolveService(config) as service:
                # Attempt 1: worker dies.  Attempt 2: the supervisor
                # respawns the pool, whose worker dies too — breaker
                # opens.  Attempt 3: degraded to the thread backend,
                # which answers.  One request, the whole lifecycle.
                solution = await service.submit(source, target)
                assert solution.exists == expected
                stats = service.stats
                assert stats.requests_rescued == 1
                assert stats.retries == 2
                assert stats.worker_restarts == 1
                assert stats.degraded.get("process", 0) == 1
                assert stats.breaker_states.get("process") == "open"
                # The recorder pins the lifecycle event-for-event: two
                # crashes, one restart, one breaker transition, a retry
                # per re-attempt, and the final completion.
                counts = service.recorder.counts()
                assert counts.get("worker.crash", 0) == 2
                assert counts.get("worker.restart", 0) == 1
                assert counts.get("request.retry", 0) == 2
                assert counts.get("request.completed", 0) == 1
                assert counts.get("breaker.transition", 0) == sum(
                    stats.breaker_transitions.values()
                )

        faultinject.install(
            FaultPlan(2, {"worker.kill.before": 1.0}), env=True
        )
        try:
            asyncio.run(asyncio.wait_for(scenario(), STORM_TIMEOUT))
        finally:
            faultinject.uninstall()


class TestCancellationFreesWorkers:
    def test_timed_out_solve_frees_its_worker_quickly(self):
        """The acceptance criterion for deadline propagation: a timed-out
        kernel solve stops consuming its worker within the cooperative
        check interval, instead of grinding to completion."""
        source, target = slow_instance()
        cheap = cheap_instance(0)
        pipeline = SolveService(ServiceConfig()).pipeline
        started = time.perf_counter()
        uncancelled_solution = pipeline.solve(source, target)
        uncancelled = time.perf_counter() - started
        assert not uncancelled_solution.exists
        cheap_expected = pipeline.solve(*cheap).exists
        config = ServiceConfig(thread_workers=1, process_workers=0)

        async def scenario():
            async with SolveService(config) as service:
                with pytest.raises(SolveTimeoutError):
                    await service.submit(source, target, timeout=0.08)
                # The single worker must be free again almost at once:
                # the next request completes in a fraction of the time
                # the abandoned solve would still have been running.
                freed_at = time.perf_counter()
                solution = await service.submit(*cheap)
                freed = time.perf_counter() - freed_at
                assert solution.exists == cheap_expected
                assert freed < max(0.1, uncancelled / 2), (
                    f"worker held {freed:.3f}s after timeout "
                    f"(uncancelled solve: {uncancelled:.3f}s)"
                )
                # The computation unwound cooperatively — it did not run
                # to completion for a waiter that had already left.
                assert service.stats.cancelled_solves == 1
                assert service.stats.timeouts >= 1

        asyncio.run(asyncio.wait_for(scenario(), STORM_TIMEOUT))

    def test_leader_timeout_does_not_starve_patient_follower(self):
        """Timeout during coalesce: the leader gives up, but its
        follower extended the shared deadline, so the computation keeps
        going and the follower still gets the answer."""
        source, target = slow_instance()
        config = ServiceConfig(thread_workers=1, process_workers=0)

        async def scenario():
            async with SolveService(config) as service:
                leader = service.submit(source, target, timeout=0.05)
                follower = service.submit(source, target, timeout=30.0)
                leader_result, follower_result = await asyncio.gather(
                    leader, follower, return_exceptions=True
                )
                assert isinstance(leader_result, SolveTimeoutError)
                assert not isinstance(follower_result, BaseException)
                assert not follower_result.exists
                stats = service.stats
                assert stats.coalesce_hits == 1
                assert stats.timeouts == 1
                assert stats.completed == 1
                # The extension reached the running kernel loop: the
                # computation was never cooperatively cancelled.
                assert stats.cancelled_solves == 0

        asyncio.run(asyncio.wait_for(scenario(), STORM_TIMEOUT))


class TestShutdownAndOverloadRaces:
    def test_submit_after_stop_begins_is_rejected_typed(self):
        config = ServiceConfig(thread_workers=1, process_workers=0)

        async def scenario():
            service = await SolveService(config).start()
            blocker = asyncio.ensure_future(
                service.submit(*slow_instance())
            )
            await asyncio.sleep(0.05)  # the blocker is dispatched
            stop_task = asyncio.create_task(service.stop(drain=False))
            await asyncio.sleep(0)  # stop() has flipped the gate
            with pytest.raises(ServiceClosedError):
                service.submit(*cheap_instance())
            # The already-running solve still completes for its waiter.
            solution = await blocker
            assert not solution.exists
            await stop_task

        asyncio.run(asyncio.wait_for(scenario(), STORM_TIMEOUT))

    def test_stop_without_drain_fails_queued_and_followers_typed(self):
        config = ServiceConfig(thread_workers=1, process_workers=0)

        async def scenario():
            service = await SolveService(config).start()
            blocker = asyncio.ensure_future(
                service.submit(*slow_instance())
            )
            await asyncio.sleep(0.05)  # single worker now occupied
            queued_pair = cheap_instance(3)
            queued = asyncio.ensure_future(service.submit(*queued_pair))
            follower = asyncio.ensure_future(
                service.submit(*queued_pair)
            )
            await asyncio.sleep(0)  # both are waiting behind the blocker
            assert service.stats.coalesce_hits == 1
            await service.stop(drain=False)
            # Queued leader AND coalesced follower fail with the typed
            # closure error — never a bare CancelledError — and the
            # fingerprint table holds no stale entry.
            with pytest.raises(ServiceClosedError):
                await queued
            with pytest.raises(ServiceClosedError):
                await follower
            assert not service._inflight
            solution = await blocker
            assert not solution.exists

        asyncio.run(asyncio.wait_for(scenario(), STORM_TIMEOUT))

    def test_overload_rejects_new_work_of_any_priority(self):
        config = ServiceConfig(
            thread_workers=1, process_workers=0, max_pending=2
        )

        async def scenario():
            async with SolveService(config) as service:
                blocker = asyncio.ensure_future(
                    service.submit(*slow_instance())
                )
                await asyncio.sleep(0.05)
                queued_pair = cheap_instance(4)
                queued = asyncio.ensure_future(
                    service.submit(*queued_pair)
                )
                # Admission control is priority-blind for *new* work:
                # a HIGH submission cannot evict open requests.
                with pytest.raises(ServiceOverloadedError):
                    service.submit(
                        *heavy_instance(1), priority=Priority.HIGH
                    )
                assert service.stats.rejected == 1
                # But a duplicate of queued work coalesces for free even
                # at low priority — it adds no open request.
                follower = asyncio.ensure_future(
                    service.submit(*queued_pair, priority=Priority.LOW)
                )
                await asyncio.sleep(0)
                assert service.stats.coalesce_hits == 1
                results = await asyncio.gather(blocker, queued, follower)
                assert results[1].exists == results[2].exists

        asyncio.run(asyncio.wait_for(scenario(), STORM_TIMEOUT))
