"""Tests for serialization round-trips."""

import pytest
from hypothesis import given, settings

from repro.cq.parser import parse_query
from repro.datalog.program import parse_program
from repro.exceptions import ParseError
from repro.structures.graphs import cycle, directed_cycle
from repro.structures.io import (
    program_from_text,
    program_to_text,
    query_from_text,
    query_to_text,
    structure_from_dict,
    structure_from_json,
    structure_to_dict,
    structure_to_json,
)

from conftest import structures


class TestStructureRoundtrip:
    def test_dict_roundtrip(self):
        s = cycle(5)
        assert structure_from_dict(structure_to_dict(s)) == s

    def test_json_roundtrip(self):
        s = directed_cycle(4)
        assert structure_from_json(structure_to_json(s)) == s

    def test_json_pretty(self):
        text = structure_to_json(cycle(3), indent=2)
        assert "\n" in text
        assert structure_from_json(text) == cycle(3)

    def test_isolated_elements_survive(self):
        from repro.structures.structure import Structure

        s = Structure(cycle(3).vocabulary, {0, 1, 2, 9},
                      {"E": {(0, 1)}})
        assert structure_from_dict(structure_to_dict(s)) == s

    def test_empty_relations_survive(self):
        from repro.structures.structure import Structure
        from repro.structures.vocabulary import Vocabulary

        s = Structure(Vocabulary.from_arities({"E": 2, "P": 1}), {0})
        assert structure_from_dict(structure_to_dict(s)) == s

    def test_malformed_dict_rejected(self):
        with pytest.raises(ParseError):
            structure_from_dict({"relations": {}})

    def test_malformed_json_rejected(self):
        with pytest.raises(ParseError):
            structure_from_json("{not json")

    @given(structures())
    @settings(max_examples=40, deadline=None)
    def test_random_roundtrip(self, s):
        assert structure_from_dict(structure_to_dict(s)) == s
        assert structure_from_json(structure_to_json(s)) == s


class TestQueryRoundtrip:
    def test_text_roundtrip(self):
        q = parse_query("Q(X1, X2) :- P(X1, Z1, Z2), R(Z2, X2).")
        assert query_from_text(query_to_text(q)) == q

    def test_boolean_query_roundtrip(self):
        q = parse_query("Q :- E(X, Y).")
        assert query_from_text(query_to_text(q)) == q


class TestProgramRoundtrip:
    PROGRAM = "T(X, Y) :- E(X, Y)\nT(X, Y) :- T(X, Z), E(Z, Y)"

    def test_text_roundtrip_with_goal_comment(self):
        program = parse_program(self.PROGRAM, goal="T")
        text = program_to_text(program)
        again = program_from_text(text)
        assert again.goal == "T"
        assert len(again) == len(program)

    def test_explicit_goal_overrides(self):
        program = program_from_text(self.PROGRAM, goal="T")
        assert program.goal == "T"

    def test_missing_goal_rejected(self):
        with pytest.raises(ParseError):
            program_from_text(self.PROGRAM)
