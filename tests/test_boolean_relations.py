"""Tests for Boolean relations and their polymorphism operations."""

import pytest
from hypothesis import given, settings

from repro.boolean.relations import (
    BooleanRelation,
    boolean_relations_of,
    tuple_and,
    tuple_majority,
    tuple_or,
    tuple_xor3,
)
from repro.exceptions import NotBooleanError
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

from conftest import boolean_relations


class TestTupleOperations:
    def test_and(self):
        assert tuple_and((1, 0, 1), (1, 1, 0)) == (1, 0, 0)

    def test_or(self):
        assert tuple_or((1, 0, 1), (0, 0, 1)) == (1, 0, 1)

    def test_majority(self):
        assert tuple_majority((1, 0, 0), (1, 1, 0), (0, 1, 0)) == (1, 1, 0)

    def test_xor3(self):
        assert tuple_xor3((1, 0, 0), (1, 1, 0), (1, 1, 1)) == (1, 0, 1)

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            tuple_and((1, 0), (1,))


class TestBooleanRelation:
    def test_basic_container(self):
        r = BooleanRelation(2, [(0, 1), (1, 0)])
        assert len(r) == 2 and (0, 1) in r and (1, 1) not in r
        assert r.arity == 2

    def test_non_boolean_entries_rejected(self):
        with pytest.raises(NotBooleanError):
            BooleanRelation(1, [(2,)])

    def test_wrong_width_rejected(self):
        with pytest.raises(NotBooleanError):
            BooleanRelation(2, [(0, 1, 0)])

    def test_validity_flags(self):
        r = BooleanRelation(2, [(0, 0), (1, 1)])
        assert r.is_zero_valid and r.is_one_valid

    def test_empty_relation_flags(self):
        r = BooleanRelation(2, [])
        assert not r.is_zero_valid and not r.is_one_valid
        # closure conditions hold vacuously
        assert r.is_horn and r.is_dual_horn
        assert r.is_bijunctive and r.is_affine

    def test_horn_closure(self):
        horn = BooleanRelation(2, [(1, 1), (1, 0), (0, 0)])
        assert horn.is_horn
        not_horn = BooleanRelation(2, [(1, 0), (0, 1)])
        assert not not_horn.is_horn  # AND gives (0,0)

    def test_dual_horn_closure(self):
        dual = BooleanRelation(2, [(0, 0), (0, 1), (1, 1)])
        assert dual.is_dual_horn
        not_dual = BooleanRelation(2, [(1, 0), (0, 1)])
        assert not not_dual.is_dual_horn  # OR gives (1,1)

    def test_two_tuples_always_bijunctive(self):
        r = BooleanRelation(3, [(1, 0, 1), (0, 1, 0)])
        assert r.is_bijunctive

    def test_one_in_three_not_bijunctive(self):
        # positive one-in-three 3-SAT relation (the paper's NP example)
        r = BooleanRelation(3, [(1, 0, 0), (0, 1, 0), (0, 0, 1)])
        assert not r.is_bijunctive
        assert not r.is_horn and not r.is_dual_horn and not r.is_affine
        assert not r.is_zero_valid and not r.is_one_valid

    def test_xor_relation_affine(self):
        r = BooleanRelation(2, [(0, 1), (1, 0)])
        assert r.is_affine

    def test_ones_helper(self):
        r = BooleanRelation(3, [])
        assert r.ones((1, 0, 1)) == frozenset({0, 2})

    def test_satisfies_implication(self):
        r = BooleanRelation(2, [(1, 1), (0, 0)])
        assert r.satisfies_implication(frozenset({0}), 1)
        r2 = BooleanRelation(2, [(1, 0), (0, 0)])
        assert not r2.satisfies_implication(frozenset({0}), 1)

    def test_satisfies_implication_vacuous(self):
        r = BooleanRelation(2, [(0, 0)])
        # no tuple has position 0 set, so anything follows from {0}
        assert r.satisfies_implication(frozenset({0}), 1)

    def test_meet_above(self):
        r = BooleanRelation(2, [(1, 1), (1, 0), (0, 0)])
        assert r.meet_above(frozenset({0})) == (1, 0)
        assert r.meet_above(frozenset()) == (0, 0)
        assert r.meet_above(frozenset({1})) == (1, 1)
        assert BooleanRelation(2, []).meet_above(frozenset()) is None

    def test_complemented_swaps_horn_dual(self):
        horn = BooleanRelation(2, [(1, 1), (1, 0), (0, 0)])
        flipped = horn.complemented()
        assert flipped.is_dual_horn
        assert flipped.tuples == {(0, 0), (0, 1), (1, 1)}

    def test_nonmembers(self):
        r = BooleanRelation(2, [(0, 0)])
        assert set(r.nonmembers()) == {(0, 1), (1, 0), (1, 1)}

    @given(boolean_relations(closure="horn"))
    @settings(max_examples=40, deadline=None)
    def test_closed_generation_horn(self, r):
        assert r.is_horn

    @given(boolean_relations(closure="dual_horn"))
    @settings(max_examples=40, deadline=None)
    def test_closed_generation_dual_horn(self, r):
        assert r.is_dual_horn

    @given(boolean_relations(closure="bijunctive"))
    @settings(max_examples=40, deadline=None)
    def test_closed_generation_bijunctive(self, r):
        assert r.is_bijunctive

    @given(boolean_relations(closure="affine"))
    @settings(max_examples=40, deadline=None)
    def test_closed_generation_affine(self, r):
        assert r.is_affine

    @given(boolean_relations())
    @settings(max_examples=40, deadline=None)
    def test_complement_involution(self, r):
        assert r.complemented().complemented() == r


class TestBooleanRelationsOf:
    def test_extraction(self):
        vocabulary = Vocabulary.from_arities({"R": 2})
        s = Structure(vocabulary, {0, 1}, {"R": {(0, 1)}})
        rels = boolean_relations_of(s)
        assert rels["R"].tuples == {(0, 1)}

    def test_non_boolean_rejected(self):
        vocabulary = Vocabulary.from_arities({"R": 1})
        s = Structure(vocabulary, {0, 1, 2}, {"R": {(2,)}})
        with pytest.raises(NotBooleanError):
            boolean_relations_of(s)
