"""Tests for disjoint unions, direct products, and cores."""

import pytest
from hypothesis import given, settings

from repro.exceptions import VocabularyError
from repro.structures.graphs import clique, cycle, graph_structure, path
from repro.structures.homomorphism import (
    homomorphism_exists,
    is_homomorphism,
)
from repro.structures.product import (
    core,
    direct_product,
    disjoint_union,
    is_core,
    power,
    retract_onto,
)
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

from conftest import structure_pairs

GRAPH = Vocabulary.from_arities({"E": 2})


class TestDisjointUnion:
    def test_universe_is_tagged_union(self):
        u = disjoint_union(cycle(3), cycle(4))
        assert len(u) == 7
        assert (0, 0) in u.universe and (1, 0) in u.universe

    def test_coproduct_property(self):
        k3 = clique(3)
        u = disjoint_union(cycle(3), cycle(4))
        # both parts 3-colorable -> union 3-colorable
        assert homomorphism_exists(u, k3)
        # odd part not 2-colorable -> union not 2-colorable
        assert not homomorphism_exists(u, clique(2))

    def test_vocabulary_mismatch(self):
        other = Structure(Vocabulary.from_arities({"F": 2}))
        with pytest.raises(VocabularyError):
            disjoint_union(cycle(3), other)


class TestDirectProduct:
    def test_universe_is_cartesian(self):
        p = direct_product(cycle(3), cycle(4))
        assert len(p) == 12

    def test_projections_are_homomorphisms(self):
        a, b = cycle(3), clique(3)
        p = direct_product(a, b)
        left = {pair: pair[0] for pair in p.universe}
        right = {pair: pair[1] for pair in p.universe}
        assert is_homomorphism(left, p, a)
        assert is_homomorphism(right, p, b)

    def test_categorical_product_property(self):
        # C6 -> K2 and C6 -> K3, so C6 -> K2 x K3
        c6 = cycle(6)
        p = direct_product(clique(2), clique(3))
        assert homomorphism_exists(c6, p)
        # C5 does not map to K2, so it cannot map to K2 x K3 either
        assert not homomorphism_exists(cycle(5), p)

    @given(structure_pairs(max_elements=3, max_facts=3))
    @settings(max_examples=25, deadline=None)
    def test_product_characterization(self, pair):
        a, b = pair
        p = direct_product(a, b)
        small = path(2)
        small = small.with_vocabulary(small.vocabulary)
        # use a as the test object: a -> p iff a -> a and a -> b
        maps_to_product = homomorphism_exists(a, p)
        assert maps_to_product == (
            homomorphism_exists(a, a) and homomorphism_exists(a, b)
        )

    def test_power(self):
        squared = power(clique(2), 2)
        assert len(squared) == 4
        with pytest.raises(ValueError):
            power(clique(2), 0)


class TestRetraction:
    def test_retract_even_cycle_onto_edge(self):
        c4 = cycle(4)
        retraction = retract_onto(c4, {0, 1})
        assert retraction is not None
        assert retraction[0] == 0 and retraction[1] == 1
        assert set(retraction.values()) <= {0, 1}

    def test_no_retraction_of_odd_cycle_onto_edge(self):
        assert retract_onto(cycle(5), {0, 1}) is None

    def test_retraction_is_homomorphism(self):
        c4 = cycle(4)
        retraction = retract_onto(c4, {0, 1})
        assert is_homomorphism(retraction, c4, c4.restrict({0, 1}))


class TestCore:
    def test_core_of_even_cycle_is_edge(self):
        c = core(cycle(6))
        assert len(c) == 2
        assert c.num_facts == 2  # one symmetric edge

    def test_core_of_odd_cycle_is_itself(self):
        c = core(cycle(5))
        assert len(c) == 5

    def test_core_of_clique_is_itself(self):
        assert len(core(clique(3))) == 3

    def test_cliques_and_odd_cycles_are_cores(self):
        assert is_core(clique(3))
        assert is_core(cycle(5))
        assert not is_core(cycle(6))
        assert not is_core(path(3))

    def test_core_is_core(self):
        g = graph_structure(
            range(6), [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]
        )
        c = core(g)
        assert is_core(c)

    def test_core_homomorphically_equivalent(self):
        g = cycle(6)
        c = core(g)
        assert homomorphism_exists(g, c)
        assert homomorphism_exists(c, g)

    def test_core_of_disjoint_union_with_dominated_part(self):
        # C4 + K2: the K2 absorbs the whole thing
        u = disjoint_union(cycle(4), clique(2))
        c = core(u)
        assert len(c) == 2
