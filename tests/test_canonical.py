"""Tests for canonical databases and canonical queries (Section 2)."""

import pytest

from repro.cq.canonical import (
    DISTINGUISHED_PREFIX,
    body_structure,
    canonical_database,
    canonical_query,
    distinguished_marker,
    query_of_structure,
)
from repro.cq.parser import parse_query
from repro.exceptions import VocabularyError
from repro.structures.graphs import clique, cycle
from repro.structures.homomorphism import homomorphism_exists


class TestCanonicalDatabase:
    def test_paper_example(self):
        # "the canonical database consists of the facts P(X1,Z1,Z2),
        #  R(Z2,Z3), R(Z3,X2), P1(X1), P2(X2)"
        q = parse_query(
            "Q(X1, X2) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2)."
        )
        d = canonical_database(q)
        assert d.holds("P", ("X1", "Z1", "Z2"))
        assert d.holds("R", ("Z2", "Z3"))
        assert d.holds("R", ("Z3", "X2"))
        assert d.holds(f"{DISTINGUISHED_PREFIX}0", ("X1",))
        assert d.holds(f"{DISTINGUISHED_PREFIX}1", ("X2",))
        assert d.universe == {"X1", "X2", "Z1", "Z2", "Z3"}

    def test_marker_symbol(self):
        marker = distinguished_marker(3)
        assert marker.arity == 1
        assert marker.name.startswith(DISTINGUISHED_PREFIX)

    def test_body_structure_has_no_markers(self):
        q = parse_query("Q(X) :- E(X, Y).")
        body = body_structure(q)
        assert all(
            not s.name.startswith(DISTINGUISHED_PREFIX)
            for s in body.vocabulary
        )

    def test_head_variable_outside_body_still_an_element(self):
        q = parse_query("Q(W) :- E(X, Y).")
        d = canonical_database(q)
        assert "W" in d.universe

    def test_widening_vocabulary(self):
        q = parse_query("Q(X) :- E(X, Y).")
        from repro.structures.vocabulary import Vocabulary

        wider = Vocabulary.from_arities({"E": 2, "F": 3})
        d = canonical_database(q, wider)
        assert "F" in d.vocabulary

    def test_repeated_head_variables_share_marker_elements(self):
        q = parse_query("Q(X, X) :- E(X, Y).")
        d = canonical_database(q)
        assert d.holds(f"{DISTINGUISHED_PREFIX}0", ("X",))
        assert d.holds(f"{DISTINGUISHED_PREFIX}1", ("X",))


class TestCanonicalQuery:
    def test_boolean_query_of_structure(self):
        q = query_of_structure(cycle(3))
        assert q.is_boolean
        assert len(q) == cycle(3).num_facts

    def test_head_elements(self):
        q = canonical_query(clique(2), (0,))
        assert q.arity == 1

    def test_head_element_must_exist(self):
        with pytest.raises(VocabularyError):
            canonical_query(clique(2), (99,))

    def test_homomorphism_iff_containment_of_canonical_queries(self):
        # Section 2: A -> B iff Q_B <= Q_A
        from repro.cq.containment import contains

        a, b = cycle(6), clique(2)
        assert homomorphism_exists(a, b)
        assert contains(query_of_structure(b), query_of_structure(a))

        a2 = cycle(5)
        assert not homomorphism_exists(a2, b)
        assert not contains(query_of_structure(b), query_of_structure(a2))

    def test_canonical_roundtrip_preserves_homomorphism_semantics(self):
        # D_{Q_A} is isomorphic to A (modulo variable names)
        a = cycle(4)
        q = query_of_structure(a)
        d = body_structure(q)
        assert homomorphism_exists(d, a) and homomorphism_exists(a, d)
