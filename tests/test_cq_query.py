"""Tests for the conjunctive-query AST and parser."""

import pytest

from repro.cq.parser import parse_atom_list, parse_query
from repro.cq.query import Atom, ConjunctiveQuery
from repro.exceptions import ParseError, VocabularyError


class TestAtom:
    def test_fields(self):
        atom = Atom("E", ("X", "Y"))
        assert atom.relation == "E" and atom.arity == 2

    def test_str(self):
        assert str(Atom("E", ("X", "Y"))) == "E(X, Y)"

    def test_empty_relation_name_rejected(self):
        with pytest.raises(ParseError):
            Atom("", ("X",))

    def test_nullary_atom(self):
        assert Atom("S", ()).arity == 0


class TestConjunctiveQuery:
    def test_basic(self):
        q = ConjunctiveQuery(("X",), [("E", ("X", "Y"))])
        assert q.arity == 1
        assert q.head_variables == ("X",)
        assert len(q) == 1

    def test_variables_and_existential(self):
        q = ConjunctiveQuery(
            ("X",), [("E", ("X", "Y")), ("E", ("Y", "Z"))]
        )
        assert q.variables == {"X", "Y", "Z"}
        assert q.existential_variables == {"Y", "Z"}

    def test_head_variable_not_in_body_allowed(self):
        q = ConjunctiveQuery(("W",), [("E", ("X", "Y"))])
        assert "W" in q.variables

    def test_boolean_query(self):
        q = ConjunctiveQuery((), [("E", ("X", "Y"))])
        assert q.is_boolean and q.arity == 0

    def test_repeated_head_variables(self):
        q = ConjunctiveQuery(("X", "X"), [("E", ("X", "Y"))])
        assert q.arity == 2

    def test_arity_clash_rejected(self):
        with pytest.raises(VocabularyError):
            ConjunctiveQuery(
                (), [("E", ("X", "Y")), ("E", ("X",))]
            )

    def test_vocabulary(self):
        q = ConjunctiveQuery(
            (), [("E", ("X", "Y")), ("P", ("X",))]
        )
        assert q.vocabulary.arity("E") == 2
        assert q.vocabulary.arity("P") == 1

    def test_occurrence_counts_and_two_atom(self):
        q = ConjunctiveQuery(
            (),
            [("E", ("X", "Y")), ("E", ("Y", "Z")), ("P", ("X",))],
        )
        assert q.occurrence_counts() == {"E": 2, "P": 1}
        assert q.is_two_atom
        q3 = ConjunctiveQuery(
            (),
            [("E", ("X", "Y")), ("E", ("Y", "Z")), ("E", ("Z", "X"))],
        )
        assert not q3.is_two_atom

    def test_equality_ignores_atom_order(self):
        q1 = ConjunctiveQuery(
            ("X",), [("E", ("X", "Y")), ("P", ("Y",))]
        )
        q2 = ConjunctiveQuery(
            ("X",), [("P", ("Y",)), ("E", ("X", "Y"))]
        )
        assert q1 == q2 and hash(q1) == hash(q2)

    def test_duplicate_atoms_collapse(self):
        q = ConjunctiveQuery(
            (), [("E", ("X", "Y")), ("E", ("X", "Y"))]
        )
        assert len(q) == 1

    def test_rename_variables(self):
        q = ConjunctiveQuery(("X",), [("E", ("X", "Y"))])
        renamed = q.rename_variables({"X": "A", "Y": "B"})
        assert renamed.head_variables == ("A",)
        assert renamed.atoms[0].terms == ("A", "B")

    def test_rename_must_be_injective(self):
        q = ConjunctiveQuery(("X",), [("E", ("X", "Y"))])
        with pytest.raises(VocabularyError):
            q.rename_variables({"X": "Y"})

    def test_str_roundtrip_through_parser(self):
        q = ConjunctiveQuery(
            ("X1", "X2"),
            [("P", ("X1", "Z1", "Z2")), ("R", ("Z2", "Z3"))],
        )
        assert parse_query(str(q)) == q

    def test_size(self):
        q = ConjunctiveQuery(("X",), [("E", ("X", "Y"))])
        assert q.size == 1 + 3


class TestParser:
    def test_paper_example(self):
        q = parse_query(
            "Q(X1, X2) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2)."
        )
        assert q.head_variables == ("X1", "X2")
        assert len(q) == 3
        assert q.vocabulary.arity("P") == 3

    def test_boolean_forms(self):
        for text in ("Q :- E(X, X).", "Q() :- E(X, X)."):
            q = parse_query(text)
            assert q.is_boolean and len(q) == 1

    def test_empty_body(self):
        q = parse_query("Q(X) :- .")
        assert len(q) == 0

    def test_name_override(self):
        q = parse_query("Q(X) :- E(X, Y).", name="Renamed")
        assert q.name == "Renamed"

    def test_missing_arrow_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(X) E(X, Y)")

    def test_bad_head_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(X,) :- E(X, Y)")

    def test_bad_atom_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(X) :- E(X Y)")

    def test_missing_comma_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Q(X) :- E(X, Y) E(Y, Z)")

    def test_parse_atom_list(self):
        atoms = parse_atom_list("E(X, Y), P(Z)")
        assert [a.relation for a in atoms] == ["E", "P"]

    def test_parse_atom_list_empty(self):
        assert parse_atom_list("  ") == []

    def test_whitespace_insensitive(self):
        q1 = parse_query("Q(X):-E(X,Y),P(Y).")
        q2 = parse_query("Q( X ) :-  E( X , Y ) ,  P( Y ) .")
        assert q1 == q2
