"""Tests for the polymorphism machinery (concluding-remarks direction)."""

import pytest
from hypothesis import given, settings

from repro.boolean.polymorphisms import (
    AND,
    CONSTANT_0,
    CONSTANT_1,
    MAJORITY,
    MINORITY,
    NOT,
    OR,
    Operation,
    is_polymorphism,
    polymorphisms,
    projection,
    schaefer_classes_from_polymorphisms,
)
from repro.boolean.relations import BooleanRelation
from repro.boolean.schaefer import classify_relation

from conftest import boolean_relations


class TestOperation:
    def test_named_operations(self):
        assert AND(1, 1) == 1 and AND(1, 0) == 0
        assert OR(0, 0) == 0 and OR(0, 1) == 1
        assert MAJORITY(1, 1, 0) == 1 and MAJORITY(1, 0, 0) == 0
        assert MINORITY(1, 1, 0) == 0 and MINORITY(1, 0, 0) == 1
        assert CONSTANT_0(1) == 0 and CONSTANT_1(0) == 1
        assert NOT(0) == 1

    def test_wrong_arity_call(self):
        with pytest.raises(ValueError):
            AND(1)

    def test_bad_table_size(self):
        with pytest.raises(ValueError):
            Operation("broken", 2, (0, 1))

    def test_projection(self):
        p = projection(3, 1)
        assert p(0, 1, 0) == 1
        with pytest.raises(ValueError):
            projection(2, 5)

    def test_apply_to_tuples(self):
        assert AND.apply_to_tuples(((1, 0, 1), (1, 1, 0))) == (1, 0, 0)

    def test_equality_by_table(self):
        again = Operation.from_function("and2", 2, lambda x, y: x & y)
        assert again == AND
        assert hash(again) == hash(AND)


class TestIsPolymorphism:
    def test_projections_always_preserve(self):
        r = BooleanRelation(3, [(1, 0, 0), (0, 1, 0), (0, 0, 1)])
        for i in range(2):
            assert is_polymorphism(projection(2, i), r)

    def test_and_preserves_horn(self):
        horn = BooleanRelation(2, [(0, 0), (0, 1), (1, 1)])
        assert is_polymorphism(AND, horn)

    def test_and_fails_on_xor(self):
        xor = BooleanRelation(2, [(0, 1), (1, 0)])
        assert not is_polymorphism(AND, xor)
        assert is_polymorphism(MINORITY, xor)
        assert is_polymorphism(MAJORITY, xor)
        assert is_polymorphism(NOT, xor)

    def test_empty_relation_preserved_by_everything(self):
        empty = BooleanRelation(2, [])
        for op in (AND, OR, MAJORITY, MINORITY, CONSTANT_0, NOT):
            assert is_polymorphism(op, empty)


class TestEnumeration:
    def test_unary_polymorphisms_of_full_relation(self):
        full = BooleanRelation(1, [(0,), (1,)])
        ops = list(polymorphisms([full], 1))
        assert len(ops) == 4  # all unary operations

    def test_unary_polymorphisms_of_xor(self):
        xor = BooleanRelation(2, [(0, 1), (1, 0)])
        ops = set(polymorphisms([xor], 1))
        # identity and NOT preserve it; constants do not
        assert projection(1, 0) in ops
        assert NOT in ops
        assert CONSTANT_0 not in ops and CONSTANT_1 not in ops

    def test_one_in_three_has_only_projections_binary(self):
        r = BooleanRelation(3, [(1, 0, 0), (0, 1, 0), (0, 0, 1)])
        ops = set(polymorphisms([r], 2))
        assert ops == {projection(2, 0), projection(2, 1)}


class TestSchaeferViaPolymorphisms:
    @given(boolean_relations(max_arity=3))
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_direct_recognizer(self, r):
        assert schaefer_classes_from_polymorphisms(r) == classify_relation(r)
