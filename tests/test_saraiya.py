"""Tests for Saraiya's two-atom containment (Proposition 3.6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq.containment import contains
from repro.cq.parser import parse_query
from repro.cq.query import Atom, ConjunctiveQuery
from repro.cq.saraiya import is_two_atom_instance, two_atom_contains
from repro.csp.generators import random_two_atom_query
from repro.exceptions import NotSchaeferError


@st.composite
def two_atom_queries(draw):
    variables = ["X", "Y", "Z", "W"]
    atoms = []
    for name in ("E", "F"):
        for _ in range(draw(st.integers(min_value=0, max_value=2))):
            atoms.append(
                Atom(
                    name,
                    (
                        draw(st.sampled_from(variables)),
                        draw(st.sampled_from(variables)),
                    ),
                )
            )
    if not atoms:
        atoms.append(Atom("E", ("X", "Y")))
    return ConjunctiveQuery((draw(st.sampled_from(variables)),), atoms)


@st.composite
def any_queries(draw):
    variables = ["X", "Y", "Z", "W"]
    atoms = [
        Atom(
            draw(st.sampled_from(["E", "F"])),
            (
                draw(st.sampled_from(variables)),
                draw(st.sampled_from(variables)),
            ),
        )
        for _ in range(draw(st.integers(min_value=1, max_value=4)))
    ]
    return ConjunctiveQuery((draw(st.sampled_from(variables)),), atoms)


class TestRecognizer:
    def test_two_atom_accepted(self):
        q = parse_query("Q(X) :- E(X, Y), E(Y, Z), F(Z, X).")
        assert is_two_atom_instance(q)

    def test_three_occurrences_rejected(self):
        q = parse_query("Q(X) :- E(X, Y), E(Y, Z), E(Z, X).")
        assert not is_two_atom_instance(q)
        other = parse_query("Q(X) :- E(X, Y).")
        with pytest.raises(NotSchaeferError):
            two_atom_contains(q, other)

    def test_generator_respects_class(self):
        for seed in range(10):
            q = random_two_atom_query(3, 5, seed=seed)
            assert q.is_two_atom


class TestAgainstGeneralContainment:
    def test_positive_case(self):
        q1 = parse_query("Q(X) :- E(X, Y), E(Y, Z).")
        q2 = parse_query("Q(X) :- E(X, Y).")
        assert two_atom_contains(q1, q2) is True
        assert two_atom_contains(q2, q1) is False

    def test_restriction_is_on_q1_only(self):
        q1 = parse_query("Q(X) :- E(X, Y).")
        # q2 may use a predicate arbitrarily often
        q2 = parse_query("Q(X) :- E(X, Y), E(Y, Z), E(Z, W).")
        assert two_atom_contains(q1, q2) == contains(q1, q2)

    @given(two_atom_queries(), any_queries())
    @settings(max_examples=60, deadline=None)
    def test_agreement_random(self, q1, q2):
        assert two_atom_contains(q1, q2) == contains(q1, q2)

    def test_agreement_on_generated_workload(self):
        for seed in range(15):
            q1 = random_two_atom_query(2, 4, seed=seed)
            q2 = random_two_atom_query(2, 4, seed=seed + 1000)
            assert two_atom_contains(q1, q2) == contains(q1, q2)
