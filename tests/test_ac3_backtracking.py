"""Tests for arc consistency and the backtracking facade."""

from hypothesis import given, settings

from repro.csp.ac3 import establish_arc_consistency
from repro.csp.backtracking import (
    degree_order,
    solve_backtracking,
    solve_instance,
)
from repro.csp.instance import Constraint, CSPInstance
from repro.structures.graphs import clique, cycle, path
from repro.structures.homomorphism import (
    SearchStats,
    find_homomorphism,
    homomorphism_exists,
    is_homomorphism,
)
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

from conftest import structure_pairs


class TestArcConsistency:
    def test_no_pruning_on_consistent_instance(self):
        domains = establish_arc_consistency(cycle(4), clique(2))
        assert domains is not None
        assert all(len(d) == 2 for d in domains.values())

    def test_wipeout_detected(self):
        vocabulary = Vocabulary.from_arities({"R": 2})
        target = Structure(vocabulary, {0, 1}, {"R": {(0, 1)}})
        # loop fact needs (x,x) in R: impossible
        source = Structure(vocabulary, {0}, {"R": {(0, 0)}})
        assert establish_arc_consistency(source, target) is None

    def test_chain_pruning(self):
        vocabulary = Vocabulary.from_arities({"R": 2})
        # R forces strictly increasing values over {0,1,2}
        target = Structure(
            vocabulary, {0, 1, 2}, {"R": {(0, 1), (0, 2), (1, 2)}}
        )
        source = Structure(
            vocabulary, range(3), {"R": {(0, 1), (1, 2)}}
        )
        domains = establish_arc_consistency(source, target)
        assert domains == {0: {0}, 1: {1}, 2: {2}}

    def test_soundness_never_prunes_solutions(self):
        a, b = cycle(6), clique(3)
        domains = establish_arc_consistency(a, b)
        for hom in [find_homomorphism(a, b)]:
            for element, value in hom.items():
                assert value in domains[element]

    @given(structure_pairs(max_elements=4, max_facts=5))
    @settings(max_examples=50, deadline=None)
    def test_wipeout_implies_unsat(self, pair):
        a, b = pair
        if establish_arc_consistency(a, b) is None:
            assert not homomorphism_exists(a, b)

    def test_custom_initial_domains(self):
        a, b = cycle(4), clique(2)
        domains = {e: {0} for e in a.universe}
        assert establish_arc_consistency(a, b, domains) is None


class TestBacktrackingFacade:
    def test_degree_order_sorts_by_occurrences(self):
        star = Structure(
            Vocabulary.from_arities({"E": 2}),
            range(4),
            {"E": {(0, 1), (0, 2), (0, 3)}},
        )
        assert degree_order(star)[0] == 0

    def test_solves_with_and_without_options(self):
        for preprocess in (True, False):
            for use_degree in (True, False):
                hom = solve_backtracking(
                    cycle(6),
                    clique(2),
                    preprocess=preprocess,
                    use_degree_order=use_degree,
                )
                assert hom is not None
                assert is_homomorphism(hom, cycle(6), clique(2))

    def test_unsat_with_preprocessing_shortcut(self):
        stats = SearchStats()
        vocabulary = Vocabulary.from_arities({"R": 2})
        target = Structure(vocabulary, {0, 1}, {"R": {(0, 1)}})
        source = Structure(vocabulary, {0}, {"R": {(0, 0)}})
        hom = solve_backtracking(source, target, stats=stats)
        assert hom is None
        assert stats.nodes == 0  # AC-3 refuted before search

    @given(structure_pairs(max_elements=4, max_facts=5))
    @settings(max_examples=40, deadline=None)
    def test_same_answer_as_plain_search(self, pair):
        a, b = pair
        assert (solve_backtracking(a, b) is not None) == (
            homomorphism_exists(a, b)
        )


class TestSolveInstance:
    def test_ai_instance_solved(self):
        allowed = frozenset({(0, 1), (1, 0)})
        instance = CSPInstance(
            ["a", "b", "c"],
            {v: {0, 1} for v in "abc"},
            [
                Constraint(("a", "b"), allowed),
                Constraint(("b", "c"), allowed),
            ],
        )
        solution = solve_instance(instance)
        assert solution is not None
        assert instance.is_solution(solution)

    def test_unsat_instance(self):
        allowed = frozenset({(0, 1), (1, 0)})
        instance = CSPInstance(
            ["a", "b", "c"],
            {v: {0, 1} for v in "abc"},
            [
                Constraint(("a", "b"), allowed),
                Constraint(("b", "c"), allowed),
                Constraint(("c", "a"), allowed),
            ],
        )
        assert solve_instance(instance) is None
