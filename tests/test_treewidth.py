"""Tests for tree decompositions, heuristics, exact treewidth, and the DP."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csp.generators import bounded_treewidth_structure
from repro.exceptions import DecompositionError
from repro.structures.gaifman import gaifman_graph
from repro.structures.graphs import clique, cycle, graph_structure, path
from repro.structures.homomorphism import (
    homomorphism_exists,
    is_homomorphism,
)
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary
from repro.treewidth.decomposition import TreeDecomposition
from repro.treewidth.dp import (
    homomorphism_exists_by_treewidth,
    solve_by_treewidth,
)
from repro.treewidth.exact import (
    exact_treewidth,
    exact_treewidth_graph,
    is_treewidth_at_most,
)
from repro.treewidth.heuristics import (
    decompose,
    decomposition_from_order,
    elimination_order,
    treewidth_upper_bound,
)

from conftest import structure_pairs, structures


class TestTreeDecomposition:
    def test_width(self):
        d = TreeDecomposition([{0, 1}, {1, 2}], [(0, 1)])
        assert d.width == 1

    def test_no_bags_rejected(self):
        with pytest.raises(DecompositionError):
            TreeDecomposition([], [])

    def test_cycle_in_tree_rejected(self):
        with pytest.raises(DecompositionError):
            TreeDecomposition(
                [{0}, {1}, {2}], [(0, 1), (1, 2), (2, 0)]
            )

    def test_self_loop_rejected(self):
        with pytest.raises(DecompositionError):
            TreeDecomposition([{0}], [(0, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(DecompositionError):
            TreeDecomposition([{0}], [(0, 5)])

    def test_validate_path_decomposition(self):
        p = path(4)
        d = TreeDecomposition(
            [{0, 1}, {1, 2}, {2, 3}], [(0, 1), (1, 2)]
        )
        d.validate(p)
        assert d.is_valid_for(p)

    def test_validate_rejects_uncovered_fact(self):
        d = TreeDecomposition([{0, 1}, {2, 3}], [(0, 1)])
        assert not d.is_valid_for(path(4))  # fact (1,2) uncovered

    def test_validate_rejects_missing_element(self):
        d = TreeDecomposition([{0, 1}], [])
        with pytest.raises(DecompositionError):
            d.validate(Structure(path(2).vocabulary, {0, 1, 9},
                                 {"E": {(0, 1), (1, 0)}}))

    def test_validate_rejects_disconnected_occurrences(self):
        # element 0 in bags 0 and 2 but not 1
        d = TreeDecomposition(
            [{0, 1}, {1, 2}, {0, 2}], [(0, 1), (1, 2)]
        )
        s = graph_structure([0, 1, 2], [(0, 1), (1, 2)])
        with pytest.raises(DecompositionError):
            d.validate(s)

    def test_rooted_traversal(self):
        d = TreeDecomposition(
            [{0, 1}, {1, 2}, {2, 3}], [(0, 1), (1, 2)]
        )
        order = d.rooted(0)
        assert order[0] == (0, None)
        assert (1, 0) in order and (2, 1) in order

    def test_assign_facts_covers_everything(self):
        p = path(4)
        d = TreeDecomposition(
            [{0, 1}, {1, 2}, {2, 3}], [(0, 1), (1, 2)]
        )
        assignment = d.assign_facts(p)
        total = sum(len(facts) for facts in assignment.values())
        assert total == p.num_facts


class TestHeuristics:
    @pytest.mark.parametrize("heuristic", ["min_degree", "min_fill"])
    def test_decomposition_valid_and_reasonable(self, heuristic):
        for structure in (path(6), cycle(6), clique(4)):
            d = decompose(structure, heuristic)
            d.validate(structure)

    def test_path_width_one(self):
        assert treewidth_upper_bound(path(8)) == 1

    def test_cycle_width_two(self):
        assert treewidth_upper_bound(cycle(8)) == 2

    def test_clique_width_n_minus_one(self):
        assert treewidth_upper_bound(clique(5)) == 4

    def test_elimination_order_covers_all_vertices(self):
        g = gaifman_graph(cycle(6))
        order = elimination_order(g)
        assert sorted(order) == sorted(g.nodes)

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(ValueError):
            elimination_order(gaifman_graph(path(3)), "bogus")

    def test_disconnected_graph_decomposes(self):
        s = graph_structure(range(6), [(0, 1), (3, 4)])
        d = decompose(s)
        d.validate(s)

    @given(structures(max_elements=6, max_facts=7))
    @settings(max_examples=30, deadline=None)
    def test_heuristic_upper_bounds_exact(self, s):
        assert treewidth_upper_bound(s) >= exact_treewidth(s)


class TestExactTreewidth:
    def test_known_values(self):
        assert exact_treewidth(path(6)) == 1
        assert exact_treewidth(cycle(6)) == 2
        assert exact_treewidth(clique(5)) == 4
        assert exact_treewidth(Structure(path(2).vocabulary, {0})) == 0

    def test_grid_3x3_width_3(self):
        import networkx as nx

        grid = nx.grid_2d_graph(3, 3)
        assert exact_treewidth_graph(grid) == 3

    def test_is_treewidth_at_most(self):
        assert is_treewidth_at_most(cycle(5), 2)
        assert not is_treewidth_at_most(cycle(5), 1)

    def test_single_wide_tuple(self):
        # Section 5's closing example: one n-ary tuple has treewidth n-1
        s = Structure(
            Vocabulary.from_arities({"T": 4}), (), {"T": {(0, 1, 2, 3)}}
        )
        assert exact_treewidth(s) == 3


class TestTreewidthDP:
    def test_coloring_decisions(self):
        assert solve_by_treewidth(cycle(6), clique(2)) is not None
        assert solve_by_treewidth(cycle(5), clique(2)) is None
        assert solve_by_treewidth(cycle(5), clique(3)) is not None

    def test_returned_map_verifies(self):
        hom = solve_by_treewidth(cycle(6), clique(2))
        assert is_homomorphism(hom, cycle(6), clique(2))

    def test_with_explicit_decomposition(self):
        structure, bags, tree_edges = bounded_treewidth_structure(
            8, 2, seed=5
        )
        d = TreeDecomposition(bags, tree_edges)
        got = solve_by_treewidth(structure, clique(3), d)
        want = homomorphism_exists(structure, clique(3))
        assert (got is not None) == want

    def test_invalid_decomposition_rejected(self):
        d = TreeDecomposition([{0}], [])
        with pytest.raises(DecompositionError):
            solve_by_treewidth(path(3), clique(2), d)

    def test_empty_source(self):
        empty = Structure(path(2).vocabulary)
        assert solve_by_treewidth(empty, clique(2)) == {}

    def test_empty_target(self):
        empty = Structure(path(2).vocabulary)
        assert solve_by_treewidth(path(3), empty) is None

    @given(structure_pairs(max_elements=4, max_facts=5))
    @settings(max_examples=50, deadline=None)
    def test_against_backtracking(self, pair):
        a, b = pair
        hom = solve_by_treewidth(a, b)
        assert (hom is not None) == homomorphism_exists(a, b)
        if hom is not None:
            assert is_homomorphism(hom, a, b)

    def test_decision_wrapper(self):
        assert homomorphism_exists_by_treewidth(cycle(6), clique(2))
        assert not homomorphism_exists_by_treewidth(cycle(5), clique(2))
