"""Golden tests: every worked example in the paper, verbatim.

Each test cites the paper location it reproduces; together they are the
"ground truth" anchor of the reproduction.
"""

from repro.boolean.booleanize import booleanize
from repro.boolean.relations import BooleanRelation, boolean_relations_of
from repro.boolean.schaefer import SchaeferClass, classify_relation
from repro.cq.canonical import canonical_database
from repro.cq.parser import parse_query
from repro.datalog.program import parse_program
from repro.datalog.evaluation import goal_holds
from repro.structures.graphs import (
    clique,
    cycle,
    directed_cycle,
    graph_structure,
    path,
)
from repro.structures.homomorphism import homomorphism_exists
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary


class TestSection2Example:
    """The running query of Section 2."""

    QUERY = "Q(X1, X2) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2)."

    def test_rule_form_parses(self):
        q = parse_query(self.QUERY)
        assert q.arity == 2
        assert len(q) == 3

    def test_alternative_head_order_is_different_query(self):
        q1 = parse_query("Q(X1, X2) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2).")
        q2 = parse_query("Q(X2, X1) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2).")
        assert q1 != q2

    def test_canonical_database_facts(self):
        # "the canonical database consists of the facts P(X1, Z1, Z2),
        #  R(Z2, Z3), R(Z3, X2), P1(X1), P2(X2)"
        d = canonical_database(parse_query(self.QUERY))
        assert d.num_facts == 5


class TestCliqueAndPathNonUniformity:
    """Section 2: CSP(K, G) is the clique problem; CSP(P, G) is
    Hamiltonian path — nonuniform tractability does not uniformize."""

    def test_clique_into_graph_is_clique_problem(self):
        g = graph_structure(range(4), [(0, 1), (1, 2), (2, 0), (2, 3)])
        assert homomorphism_exists(clique(3), g)      # triangle exists
        assert not homomorphism_exists(clique(4), g)  # no 4-clique

    def test_path_into_graph(self):
        # a homomorphism from the path always exists when the graph has
        # any edge (walks may repeat vertices)
        g = graph_structure(range(3), [(0, 1)])
        assert homomorphism_exists(path(5), g)


class TestSchaeferPositiveOneInThree:
    """Section 2: B = ({0,1}, {(1,0,0),(0,1,0),(0,0,1)}) is positive
    one-in-three 3-SAT — NP-complete, hence in none of the six classes."""

    def test_not_schaefer(self):
        r = BooleanRelation(3, [(1, 0, 0), (0, 1, 0), (0, 0, 1)])
        assert classify_relation(r) is SchaeferClass.NONE


class TestExample37TwoColorability:
    """Example 3.7: B' = ({0,1}, {(0,1),(1,0)}) is bijunctive (cardinality
    2) and affine (solutions of x ⊕ y = 1)."""

    def test_classification(self):
        r = BooleanRelation(2, [(0, 1), (1, 0)])
        classes = classify_relation(r)
        assert classes & SchaeferClass.BIJUNCTIVE
        assert classes & SchaeferClass.AFFINE
        assert not classes & (
            SchaeferClass.HORN
            | SchaeferClass.DUAL_HORN
            | SchaeferClass.ZERO_VALID
            | SchaeferClass.ONE_VALID
        )

    def test_affine_equation_is_xor(self):
        from repro.boolean.formulas import (
            LinearEquation,
            affine_defining_formula,
        )

        r = BooleanRelation(2, [(0, 1), (1, 0)])
        equations = affine_defining_formula(r)
        assert LinearEquation(frozenset({0, 1}), 1) in equations


class TestExample38CSPofC4:
    """Example 3.8, in full detail."""

    FIRST_LABELING = {0: 0b00, 1: 0b01, 2: 0b10, 3: 0b11}
    SECOND_LABELING = {0: 0b00, 1: 0b10, 2: 0b11, 3: 0b01}

    def _booleanized_edge(self, labeling):
        c4 = directed_cycle(4)
        bz = booleanize(c4, c4, labeling)
        return boolean_relations_of(bz.target)["E"]

    def test_first_labeling_tuples_match_paper(self):
        e = self._booleanized_edge(self.FIRST_LABELING)
        assert e.tuples == {
            (0, 0, 0, 1),
            (0, 1, 1, 0),
            (1, 0, 1, 1),
            (1, 1, 0, 0),
        }

    def test_first_labeling_is_affine_only(self):
        e = self._booleanized_edge(self.FIRST_LABELING)
        classes = classify_relation(e)
        assert classes == SchaeferClass.AFFINE

    def test_paper_counterexamples_for_first_labeling(self):
        # "the componentwise AND (resp. OR) of the first two tuples of E'
        #  is (0,0,0,0) (resp. (0,1,1,1)), which is not in E'"
        from repro.boolean.relations import tuple_and, tuple_majority, tuple_or

        t1, t2, t3 = (0, 0, 0, 1), (0, 1, 1, 0), (1, 0, 1, 1)
        e = self._booleanized_edge(self.FIRST_LABELING)
        assert tuple_and(t1, t2) == (0, 0, 0, 0) and tuple_and(t1, t2) not in e
        assert tuple_or(t1, t2) == (0, 1, 1, 1) and tuple_or(t1, t2) not in e
        # "the componentwise majority of the first three tuples of E' is
        #  (0,0,1,1), which is not in E'"
        assert tuple_majority(t1, t2, t3) == (0, 0, 1, 1)
        assert tuple_majority(t1, t2, t3) not in e

    def test_first_labeling_defining_system_matches_paper(self):
        # "E' is the set of solutions of (x^y^z) <-> false, (y^w) <-> true"
        from repro.boolean.formulas import LinearEquation

        e = self._booleanized_edge(self.FIRST_LABELING)
        paper_system = [
            LinearEquation(frozenset({0, 1, 2}), 0),
            LinearEquation(frozenset({1, 3}), 1),
        ]
        from repro.boolean.formulas import equations_define

        assert equations_define(paper_system, e)

    def test_second_labeling_tuples_match_paper(self):
        e = self._booleanized_edge(self.SECOND_LABELING)
        assert e.tuples == {
            (0, 0, 1, 0),
            (1, 0, 1, 1),
            (1, 1, 0, 1),
            (0, 1, 0, 0),
        }

    def test_second_labeling_bijunctive_and_affine(self):
        # the paper's "exercise for the reader"
        e = self._booleanized_edge(self.SECOND_LABELING)
        classes = classify_relation(e)
        assert classes & SchaeferClass.BIJUNCTIVE
        assert classes & SchaeferClass.AFFINE
        assert not classes & SchaeferClass.HORN
        assert not classes & SchaeferClass.DUAL_HORN

    def test_csp_c4_polynomial_via_affine_route(self):
        from repro.boolean.uniform import solve_schaefer_csp
        from repro.structures.graphs import random_digraph

        c4 = directed_cycle(4)
        for seed in range(6):
            g = random_digraph(5, 0.3, seed=seed)
            bz = booleanize(g, c4, self.FIRST_LABELING)
            got = solve_schaefer_csp(bz.source, bz.target)
            assert (got is not None) == homomorphism_exists(g, c4)


class TestSection41DatalogProgram:
    """The 4-Datalog non-2-colorability program of Section 4.1."""

    PROGRAM = """
    P(X, Y) :- E(X, Y)
    P(X, Y) :- P(X, Z), E(Z, W), E(W, Y)
    Q() :- P(X, X)
    """

    def test_is_4_datalog(self):
        program = parse_program(self.PROGRAM, goal="Q")
        assert program.is_k_datalog(4)

    def test_expresses_non_two_colorability(self):
        program = parse_program(self.PROGRAM, goal="Q")
        for n in range(3, 9):
            assert goal_holds(program, cycle(n)) == (n % 2 == 1)

    def test_agrees_with_homomorphism_into_k2(self):
        from repro.structures.graphs import random_graph

        program = parse_program(self.PROGRAM, goal="Q")
        for seed in range(8):
            g = random_graph(6, 0.35, seed=seed)
            assert goal_holds(program, g) == (
                not homomorphism_exists(g, clique(2))
            )


class TestSection5WideTupleExample:
    """Section 5's closing example: a structure with one n-ary tuple has
    Gaifman treewidth n−1 but incidence treewidth 1."""

    def test_gap(self):
        import networkx as nx

        from repro.structures.gaifman import incidence_graph
        from repro.treewidth.exact import exact_treewidth

        s = Structure(
            Vocabulary.from_arities({"T": 4}), (), {"T": {(0, 1, 2, 3)}}
        )
        assert exact_treewidth(s) == 3
        assert nx.is_tree(incidence_graph(s))  # treewidth 1


class TestRemark410HornExample:
    """Remark 4.10.2: for a k-ary Horn Boolean structure B, the k-pebble
    game decides CSP(·, B)."""

    def test_horn_target_decided_by_game(self):
        from repro.pebble.game import spoiler_wins

        vocabulary = Vocabulary.from_arities({"R": 2})
        horn_target = Structure(
            vocabulary, {0, 1}, {"R": {(1, 1), (0, 0), (0, 1)}}
        )
        from repro.csp.generators import random_structure

        for seed in range(8):
            source = random_structure(vocabulary, 4, 5, seed=seed)
            no_hom = not homomorphism_exists(source, horn_target)
            assert spoiler_wins(source, horn_target, 2) == no_hom
