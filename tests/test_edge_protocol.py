"""Wire-protocol conformance for the network edge.

Three walls, per ISSUE 10:

* **Golden byte fixtures** — the exact request bytes and the exact
  response bytes for every endpoint (and the typed error envelopes),
  pinned as literals.  The edge's responses are deterministic by
  construction (fixed header order, no Date header, sorted-key compact
  JSON, sorted witnesses, canonical pickles), so any drift in the wire
  format fails here first, byte-for-byte.
* **Fuzzed malformed frames** — truncated bodies, lying lengths,
  oversized payloads, invalid JSON, wrong content types, mangled batch
  framing — each answered with a *typed* 4xx.
* **The server survives all of it** — after every abuse the same
  connection-or-successor serves a golden request verbatim, and the
  ERROR-level log stays empty (the :class:`LogSentry` asserts the
  "never an unhandled exception" half of the contract).

Plus the drain contract (satellite 4): a draining edge answers 503 +
Retry-After on new work while in-flight requests run to completion, and
``python -m repro.edge`` wires SIGTERM to exactly that.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from _edge_harness import RunningEdge, wait_for
from repro.edge import EdgeConfig
from repro.edge import protocol
from repro.structures.graphs import clique, random_graph
from repro.structures.io import structure_to_dict

# ---------------------------------------------------------------------------
# Golden fixtures (captured from a live edge; pinned as literals)
# ---------------------------------------------------------------------------

SOLVE_REQUEST = (
    b"POST /v1/solve HTTP/1.1\r\nhost: t\r\n"
    b"content-type: application/json\r\ncontent-length: 163\r\n\r\n"
    b'{"source":{"relations":{"R":[["a","b"]]},"universe":["a","b"],'
    b'"vocabulary":{"R":2}},"target":{"relations":{"R":[["x","x"]]},'
    b'"universe":["x"],"vocabulary":{"R":2}}}'
)
SOLVE_RESPONSE = (
    b"HTTP/1.1 200 OK\r\nserver: repro-edge\r\n"
    b"content-type: application/json\r\ncontent-length: 137\r\n\r\n"
    b'{"coalesced":false,"route":"solve","shard":0,'
    b'"strategy":"width-planner(route=dp,width=1)","verdict":true,'
    b'"witness":[["a","x"],["b","x"]]}'
)

CONTAINMENT_REQUEST = (
    b"POST /v1/containment HTTP/1.1\r\nhost: t\r\n"
    b"content-type: application/json\r\ncontent-length: 53\r\n\r\n"
    b'{"q1":"Q(x) :- R(x,y), R(y,z)","q2":"Q(x) :- R(x,y)"}'
)
CONTAINMENT_RESPONSE = (
    b"HTTP/1.1 200 OK\r\nserver: repro-edge\r\n"
    b"content-type: application/json\r\ncontent-length: 143\r\n\r\n"
    b'{"coalesced":false,"route":"containment","shard":1,'
    b'"strategy":"width-planner(route=dp,width=1)","verdict":true,'
    b'"witness":[["x","x"],["y","y"]]}'
)

DATALOG_REQUEST = (
    b"POST /v1/datalog HTTP/1.1\r\nhost: t\r\n"
    b"content-type: application/json\r\ncontent-length: 169\r\n\r\n"
    b'{"k":2,"source":{"relations":{"R":[["a","b"]]},"universe":["a","b"],'
    b'"vocabulary":{"R":2}},"target":{"relations":{"R":[["x","x"]]},'
    b'"universe":["x"],"vocabulary":{"R":2}}}'
)
DATALOG_RESPONSE = (
    b"HTTP/1.1 200 OK\r\nserver: repro-edge\r\n"
    b"content-type: application/json\r\ncontent-length: 139\r\n\r\n"
    b'{"coalesced":false,"route":"datalog","shard":0,'
    b'"strategy":"width-planner(route=dp,width=1)","verdict":true,'
    b'"witness":[["a","x"],["b","x"]]}'
)

BATCH_REQUEST = (
    b"POST /v1/batch HTTP/1.1\r\nhost: t\r\n"
    b"content-type: application/x-repro-batch\r\ncontent-length: 99\r\n\r\n"
    b"REB1\x00\x00\x00\x01\x00\x00\x00W\x80\x05\x95L\x00\x00\x00\x00\x00\x00"
    b"\x00}\x94(\x8c\x02op\x94\x8c\x0bcontainment\x94\x8c\x02q1\x94\x8c\x0e"
    b"Q(x) :- R(x,y)\x94\x8c\x02q2\x94\x8c\x16Q(x) :- R(x,y), R(y,z)\x94u."
)
BATCH_RESPONSE = (
    b"HTTP/1.1 200 OK\r\nserver: repro-edge\r\n"
    b"content-type: application/x-repro-batch\r\ncontent-length: 140\r\n\r\n"
    b"REB1\x00\x00\x00\x01\x00\x00\x00\x80\x80\x05\x95u\x00\x00\x00\x00\x00"
    b"\x00\x00}\x94(\x8c\x07verdict\x94\x89\x8c\x07witness\x94N\x8c\x08"
    b"strategy\x94\x8c\x1fwidth-planner(route=dp,width=1)\x94\x8c\x05route"
    b"\x94\x8c\x0bcontainment\x94\x8c\tcoalesced\x94\x89\x8c\x05shard\x94K"
    b"\x01u."
)

GOLDEN_EXCHANGES = [
    ("solve", SOLVE_REQUEST, SOLVE_RESPONSE),
    ("containment", CONTAINMENT_REQUEST, CONTAINMENT_RESPONSE),
    ("datalog", DATALOG_REQUEST, DATALOG_RESPONSE),
    ("batch", BATCH_REQUEST, BATCH_RESPONSE),
]

#: Malformed frames → the exact typed error response, per ISSUE 10's
#: fuzz list (truncated bodies and oversized payloads are exercised
#: separately — their fixtures depend on the configured body cap).
GOLDEN_ERRORS = [
    (
        "not_found",
        b"POST /v1/nope HTTP/1.1\r\nhost: t\r\ncontent-type: application/json"
        b"\r\ncontent-length: 2\r\n\r\n{}",
        b"HTTP/1.1 404 Not Found\r\nserver: repro-edge\r\n"
        b"content-type: application/json\r\ncontent-length: 90\r\n\r\n"
        b'{"error":{"message":"no such endpoint: /v1/nope","status":404,'
        b'"type":"EdgeProtocolError"}}',
    ),
    (
        "bad_method",
        b"GET /v1/solve HTTP/1.1\r\nhost: t\r\n\r\n",
        b"HTTP/1.1 405 Method Not Allowed\r\nserver: repro-edge\r\n"
        b"content-type: application/json\r\ncontent-length: 91\r\n\r\n"
        b'{"error":{"message":"/v1/solve only accepts POST","status":405,'
        b'"type":"EdgeProtocolError"}}',
    ),
    (
        "invalid_json",
        b"POST /v1/solve HTTP/1.1\r\nhost: t\r\ncontent-type: application/json"
        b"\r\ncontent-length: 5\r\n\r\n{nope",
        b"HTTP/1.1 400 Bad Request\r\nserver: repro-edge\r\n"
        b"content-type: application/json\r\ncontent-length: 158\r\n\r\n"
        b'{"error":{"message":"invalid JSON body: Expecting property name '
        b"enclosed in double quotes: line 1 column 2 (char 1)\",\"status\""
        b':400,"type":"EdgeProtocolError"}}',
    ),
    (
        "wrong_content_type",
        b"POST /v1/solve HTTP/1.1\r\nhost: t\r\ncontent-type: text/plain\r\n"
        b"content-length: 2\r\n\r\n{}",
        b"HTTP/1.1 415 Unsupported Media Type\r\nserver: repro-edge\r\n"
        b"content-type: application/json\r\ncontent-length: 114\r\n\r\n"
        b"{\"error\":{\"message\":\"/v1/solve takes application/json, not "
        b"'text/plain'\",\"status\":415,\"type\":\"EdgeProtocolError\"}}",
    ),
    (
        "bad_structure",
        b"POST /v1/solve HTTP/1.1\r\nhost: t\r\ncontent-type: application/json"
        b"\r\ncontent-length: 37\r\n\r\n"
        b'{"source":{"universe":[]},"target":3}',
        b"HTTP/1.1 400 Bad Request\r\nserver: repro-edge\r\n"
        b"content-type: application/json\r\ncontent-length: 126\r\n\r\n"
        b"{\"error\":{\"message\":\"bad 'source' structure: malformed "
        b"structure dict: 'vocabulary'\",\"status\":400,"
        b'"type":"EdgeProtocolError"}}',
    ),
    (
        "bad_k",
        b"POST /v1/datalog HTTP/1.1\r\nhost: t\r\ncontent-type: "
        b"application/json\r\ncontent-length: 120\r\n\r\n"
        b'{"k":99,"source":{"relations":{},"universe":[],"vocabulary":{}},'
        b'"target":{"relations":{},"universe":[],"vocabulary":{}}}',
        b"HTTP/1.1 400 Bad Request\r\nserver: repro-edge\r\n"
        b"content-type: application/json\r\ncontent-length: 98\r\n\r\n"
        b'{"error":{"message":"k must be an int in [1, 8], got 99",'
        b'"status":400,"type":"EdgeProtocolError"}}',
    ),
    (
        "missing_length",
        b"POST /v1/solve HTTP/1.1\r\nhost: t\r\ncontent-type: application/json"
        b"\r\n\r\n",
        b"HTTP/1.1 411 Length Required\r\nserver: repro-edge\r\n"
        b"content-type: application/json\r\ncontent-length: 94\r\n"
        b"connection: close\r\n\r\n"
        b'{"error":{"message":"POST requires a content-length","status":411,'
        b'"type":"EdgeProtocolError"}}',
    ),
    (
        "bad_length",
        b"POST /v1/solve HTTP/1.1\r\nhost: t\r\ncontent-length: abc\r\n\r\n",
        b"HTTP/1.1 400 Bad Request\r\nserver: repro-edge\r\n"
        b"content-type: application/json\r\ncontent-length: 93\r\n"
        b"connection: close\r\n\r\n"
        b"{\"error\":{\"message\":\"invalid content-length: 'abc'\","
        b'"status":400,"type":"EdgeProtocolError"}}',
    ),
    (
        "chunked",
        b"POST /v1/solve HTTP/1.1\r\nhost: t\r\n"
        b"transfer-encoding: chunked\r\n\r\n",
        b"HTTP/1.1 501 Not Implemented\r\nserver: repro-edge\r\n"
        b"content-type: application/json\r\ncontent-length: 103\r\n"
        b"connection: close\r\n\r\n"
        b'{"error":{"message":"chunked transfer encoding not supported",'
        b'"status":501,"type":"EdgeProtocolError"}}',
    ),
    (
        "garbage_request_line",
        b"\x00\x01\x02 garbage\r\n\r\n",
        b"HTTP/1.1 400 Bad Request\r\nserver: repro-edge\r\n"
        b"content-type: application/json\r\ncontent-length: 113\r\n"
        b"connection: close\r\n\r\n"
        b"{\"error\":{\"message\":\"malformed request line: "
        b"'\\\\x00\\\\x01\\\\x02 garbage'\",\"status\":400,"
        b'"type":"EdgeProtocolError"}}',
    ),
]

#: Small on purpose: lets the 413 tests stay cheap.
MAX_BODY = 65536


@pytest.fixture(scope="module")
def edge():
    """One live edge (2 shards) shared by the whole conformance run."""
    config = EdgeConfig(num_shards=2, max_body_bytes=MAX_BODY)
    with RunningEdge(config) as running:
        yield running
    assert running.sentry.messages() == []


def _status(response: bytes) -> int:
    return int(response.split(b" ", 2)[1])


# ---------------------------------------------------------------------------
# Golden bytes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name,request_bytes,response_bytes",
    GOLDEN_EXCHANGES,
    ids=[name for name, _, _ in GOLDEN_EXCHANGES],
)
def test_golden_endpoint(edge, name, request_bytes, response_bytes):
    assert edge.raw(request_bytes) == response_bytes


@pytest.mark.parametrize(
    "name,request_bytes,response_bytes",
    GOLDEN_ERRORS,
    ids=[name for name, _, _ in GOLDEN_ERRORS],
)
def test_golden_error(edge, name, request_bytes, response_bytes):
    assert edge.raw(request_bytes) == response_bytes
    # The server is still serving after every typed refusal.
    assert edge.raw(SOLVE_REQUEST) == SOLVE_RESPONSE


def test_golden_healthz(edge):
    response = edge.raw(b"GET /v1/healthz HTTP/1.1\r\nhost: t\r\n\r\n")
    head, _, body = response.partition(b"\r\n\r\n")
    assert head.startswith(
        b"HTTP/1.1 200 OK\r\nserver: repro-edge\r\n"
        b"content-type: application/json\r\n"
    )
    health = json.loads(body)
    assert health["status"] == "ok"
    assert health["draining"] is False
    assert len(health["shards"]) == 2
    for shard in health["shards"]:
        assert shard["alive"] is True
        assert isinstance(shard["pid"], int)
        assert shard["generation"] == 1


def test_golden_metrics(edge):
    response = edge.raw(b"GET /v1/metrics HTTP/1.1\r\nhost: t\r\n\r\n")
    head, _, body = response.partition(b"\r\n\r\n")
    assert head.startswith(
        b"HTTP/1.1 200 OK\r\nserver: repro-edge\r\n"
        b"content-type: text/plain; version=0.0.4\r\n"
    )
    text = body.decode()
    assert "# TYPE repro_edge_requests_total counter" in text
    assert "# TYPE repro_edge_solve_latency_ms histogram" in text
    assert "repro_edge_open_requests" in text
    # The shards' kernel counters are merged into the scrape as
    # shard-labelled series: one /v1/metrics covers the fleet.
    assert "# TYPE repro_kernel_compile_targets_total counter" in text
    assert 'repro_kernel_compile_targets_total{shard="0"}' in text
    assert 'repro_kernel_compile_targets_total{shard="1"}' in text


def test_keep_alive_reuses_connection(edge):
    responses = edge.raw_keepalive(
        [SOLVE_REQUEST, CONTAINMENT_REQUEST, DATALOG_REQUEST]
    )
    assert responses == [SOLVE_RESPONSE, CONTAINMENT_RESPONSE, DATALOG_RESPONSE]


def test_connection_close_honoured(edge):
    request = SOLVE_REQUEST.replace(
        b"host: t\r\n", b"host: t\r\nconnection: close\r\n"
    )
    response = edge.raw(request)
    assert _status(response) == 200
    assert response.partition(b"\r\n\r\n")[0].endswith(b"connection: close")


# ---------------------------------------------------------------------------
# Fuzzed malformed frames
# ---------------------------------------------------------------------------


def test_fuzz_truncated_requests(edge):
    """Every prefix-cut of a valid request dies typed, never unhandled."""
    rng = random.Random(1009)
    cuts = sorted(rng.sample(range(1, len(SOLVE_REQUEST) - 1), 24))
    for cut in cuts:
        response = edge.raw(SOLVE_REQUEST[:cut])
        assert response, f"no response for cut at {cut}"
        status = _status(response)
        assert 400 <= status < 500, (cut, response[:120])
        assert b'"type":"EdgeProtocolError"' in response
    assert edge.raw(SOLVE_REQUEST) == SOLVE_RESPONSE
    assert edge.sentry.messages() == []


def test_fuzz_random_garbage(edge):
    rng = random.Random(2003)
    for length in (1, 7, 64, 512):
        blob = bytes(rng.randrange(256) for _ in range(length)) + b"\r\n\r\n"
        response = edge.raw(blob)
        if response:  # a pure-binary blob may just get the socket closed
            assert 400 <= _status(response) < 500
    assert edge.raw(SOLVE_REQUEST) == SOLVE_RESPONSE
    assert edge.sentry.messages() == []


def test_oversized_body_is_413(edge):
    declared = MAX_BODY + 1
    request = (
        b"POST /v1/solve HTTP/1.1\r\nhost: t\r\n"
        b"content-type: application/json\r\n"
        b"content-length: " + str(declared).encode() + b"\r\n\r\n"
    )
    response = edge.raw(request)
    assert _status(response) == 413
    assert b'"type":"EdgeProtocolError"' in response
    assert edge.raw(SOLVE_REQUEST) == SOLVE_RESPONSE


def test_overlong_request_line_is_400(edge):
    response = edge.raw(b"GET /" + b"a" * 9000 + b" HTTP/1.1\r\n\r\n")
    assert _status(response) == 400
    assert edge.raw(SOLVE_REQUEST) == SOLVE_RESPONSE


def test_lying_content_length_is_400(edge):
    """Body shorter than declared: the read fails typed, not hanging."""
    body = b'{"x":1}'
    request = (
        b"POST /v1/solve HTTP/1.1\r\nhost: t\r\n"
        b"content-type: application/json\r\n"
        b"content-length: 500\r\n\r\n" + body
    )
    response = edge.raw(request)
    assert _status(response) == 400
    assert b"truncated body" in response
    assert edge.raw(SOLVE_REQUEST) == SOLVE_RESPONSE


BATCH_HEAD = (
    b"POST /v1/batch HTTP/1.1\r\nhost: t\r\n"
    b"content-type: application/x-repro-batch\r\n"
)


def _batch_request(body: bytes) -> bytes:
    return (
        BATCH_HEAD
        + b"content-length: "
        + str(len(body)).encode()
        + b"\r\n\r\n"
        + body
    )


@pytest.mark.parametrize(
    "name,body",
    [
        ("bad_magic", b"NOPE\x00\x00\x00\x01\x00\x00\x00\x01x"),
        ("short_header", b"REB1\x00"),
        ("truncated_count", b"REB1\x00\x00\x00\x05\x00\x00\x00\x02ab"),
        ("lying_item_length", b"REB1\x00\x00\x00\x01\x00\x00\xff\xffab"),
        ("unpicklable_item", b"REB1\x00\x00\x00\x01\x00\x00\x00\x03zzz"),
        (
            "trailing_bytes",
            protocol.encode_frames([{"op": "solve"}]) + b"extra",
        ),
        ("too_many_items", b"REB1\x7f\xff\xff\xff"),
    ],
)
def test_fuzz_batch_framing(edge, name, body):
    response = edge.raw(_batch_request(body))
    assert _status(response) == 400, (name, response[:200])
    assert b'"type":"EdgeProtocolError"' in response
    assert edge.raw(BATCH_REQUEST) == BATCH_RESPONSE
    assert edge.sentry.messages() == []


def test_batch_item_errors_are_isolated(edge):
    """One rotten item answers typed in its slot; its batch-mates solve."""
    good = {
        "op": "containment",
        "q1": "Q(x) :- R(x,y)",
        "q2": "Q(x) :- R(x,y), R(y,z)",
    }
    body = protocol.encode_frames([good, {"op": "bogus"}, 42, good])
    response = edge.raw(_batch_request(body))
    assert _status(response) == 200
    items = protocol.decode_frames(
        response.partition(b"\r\n\r\n")[2],
        max_items=16,
        max_item_bytes=1 << 20,
    )
    assert items[0]["verdict"] is False
    assert items[1]["error"]["type"] == "EdgeProtocolError"
    assert items[1]["error"]["status"] == 400
    assert items[2]["error"]["type"] == "EdgeProtocolError"
    assert items[3]["verdict"] is False


# ---------------------------------------------------------------------------
# Satellite 4: drain is reachable — 503 on new work, in-flight completes
# ---------------------------------------------------------------------------


def _slow_solve_request() -> bytes:
    """~1.5s of real solve work (no K4 in a sparse random graph)."""
    body = protocol.dumps(
        {
            "source": structure_to_dict(random_graph(120, 0.18, seed=7)),
            "target": structure_to_dict(clique(4)),
        }
    )
    return (
        b"POST /v1/solve HTTP/1.1\r\nhost: t\r\n"
        b"content-type: application/json\r\n"
        b"content-length: " + str(len(body)).encode() + b"\r\n\r\n" + body
    )


def test_draining_edge_rejects_new_work_and_finishes_inflight():
    import asyncio

    config = EdgeConfig(num_shards=1, max_body_bytes=4 * 1024 * 1024)
    with RunningEdge(config) as edge:
        slow_request = _slow_solve_request()
        result: dict = {}

        def run_slow():
            result["response"] = edge.raw(slow_request, timeout=120)

        worker = threading.Thread(target=run_slow, daemon=True)
        worker.start()
        wait_for(
            lambda: edge.server._open_requests > 0,
            timeout=60,
            what="the slow request to be in flight",
        )

        assert edge._loop is not None
        drain_future = asyncio.run_coroutine_threadsafe(
            edge.server.drain(120), edge._loop
        )

        wait_for(
            lambda: edge.server.draining, timeout=10, what="draining flag"
        )
        # New work: typed 503 + Retry-After while the drain runs.
        refusal = edge.raw(SOLVE_REQUEST)
        assert _status(refusal) == 503
        assert b"retry-after:" in refusal
        assert b'"type":"ServiceClosedError"' in refusal
        # Health keeps answering so an orchestrator can watch the drain.
        health_response = edge.raw(b"GET /v1/healthz HTTP/1.1\r\n\r\n")
        assert _status(health_response) == 200
        health = json.loads(health_response.partition(b"\r\n\r\n")[2])
        assert health["status"] == "draining"

        worker.join(timeout=120)
        assert not worker.is_alive()
        slow_response = result["response"]
        assert _status(slow_response) == 200
        assert json.loads(slow_response.partition(b"\r\n\r\n")[2])[
            "verdict"
        ] is False  # rg(120, 0.18) has no K4

        assert drain_future.result(timeout=120) is True
    assert edge.sentry.messages() == []


def test_sigterm_drains_and_exits():
    """``python -m repro.edge`` wires SIGTERM → drain-then-exit."""
    src = str(Path(__file__).resolve().parent.parent / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.edge",
            "--port",
            "0",
            "--shards",
            "1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        info = json.loads(proc.stdout.readline())
        host, port = info["listening"].rsplit(":", 1)

        import http.client

        conn = http.client.HTTPConnection(host, int(port), timeout=30)
        conn.request("GET", "/v1/healthz")
        assert json.loads(conn.getresponse().read())["status"] == "ok"

        proc.send_signal(signal.SIGTERM)
        # The draining edge answers new work 503 until the listener
        # closes; afterwards connections are refused.  Both are a
        # correct refusal — assert we never get a 200.
        deadline = time.monotonic() + 60
        saw_refusal = False
        while time.monotonic() < deadline and proc.poll() is None:
            try:
                probe = http.client.HTTPConnection(host, int(port), timeout=5)
                probe.request(
                    "POST",
                    "/v1/containment",
                    body=b'{"q1":"Q(x) :- R(x,y)","q2":"Q(x) :- R(x,y)"}',
                    headers={"Content-Type": "application/json"},
                )
                status = probe.getresponse().status
                assert status == 503
                saw_refusal = True
                probe.close()
            except (ConnectionRefusedError, OSError):
                saw_refusal = True
            time.sleep(0.05)
        assert proc.wait(timeout=60) == 0
        assert saw_refusal
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
