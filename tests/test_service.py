"""Semantics of the concurrent solve service (P3 tentpole)."""

from __future__ import annotations

import asyncio

import pytest

from repro.exceptions import (
    ServiceClosedError,
    ServiceOverloadedError,
    SolveTimeoutError,
    VocabularyError,
)
from repro.csp.generators import random_schaefer_target, random_structure
from repro.service import Priority, ServiceConfig, SolveService
from repro.structures.graphs import clique, random_graph
from repro.structures.homomorphism import is_homomorphism
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

BINARY = Vocabulary.from_arities({"R": 2})

#: Thread-only config: fast startup, deterministic backend.
THREADS_ONLY = ServiceConfig(thread_workers=2, process_workers=0)


def cheap_instance(seed: int = 0):
    return (
        random_structure(BINARY, 6, 10, seed=seed),
        random_schaefer_target(BINARY, 3, "horn", seed=seed + 1),
    )


def heavy_instance(seed: int = 0):
    """A backtracking-heavy clique search (the E13 shape)."""
    return clique(5), random_graph(15, 0.5, seed=seed)


def slow_instance():
    """An unsatisfiable clique refutation taking a few hundred ms —
    long enough to reliably occupy a worker while a test stages the
    queue behind it."""
    return clique(7), random_graph(26, 0.55, seed=2)


class TestSubmit:
    def test_submit_returns_pipeline_solution(self):
        async def scenario():
            async with SolveService(THREADS_ONLY) as service:
                source, target = cheap_instance()
                solution = await service.submit(source, target)
                assert solution.stats is not None
                if solution.exists:
                    assert is_homomorphism(
                        solution.homomorphism, source, target
                    )
                return solution

        solution = asyncio.run(scenario())
        assert solution.strategy

    def test_submit_many_preserves_input_order(self):
        pairs = [cheap_instance(seed) for seed in range(6)]

        async def scenario():
            async with SolveService(THREADS_ONLY) as service:
                return await service.submit_many(pairs)

        solutions = asyncio.run(scenario())
        direct = [
            SolveService(THREADS_ONLY).pipeline.solve(s, t) for s, t in pairs
        ]
        assert [got.exists for got in solutions] == [
            want.exists for want in direct
        ]

    def test_vocabulary_mismatch_raises_synchronously(self):
        other = Vocabulary.from_arities({"S": 2})

        async def scenario():
            async with SolveService(THREADS_ONLY) as service:
                with pytest.raises(VocabularyError):
                    service.submit(
                        Structure(BINARY, {0}), Structure(other, {0})
                    )

        asyncio.run(scenario())

    def test_submit_outside_running_service_raises(self):
        service = SolveService(THREADS_ONLY)
        source, target = cheap_instance()
        with pytest.raises(ServiceClosedError):
            service.submit(source, target)

        async def scenario():
            async with service:
                pass

        asyncio.run(scenario())
        with pytest.raises(ServiceClosedError):
            service.submit(source, target)


class TestCoalescing:
    def test_duplicates_get_the_identical_solution_object(self):
        async def scenario():
            async with SolveService(THREADS_ONLY) as service:
                source, target = heavy_instance()
                rebuilt = Structure(
                    source.vocabulary, source.universe,
                    {"E": source.relation("E")},
                )
                first, second, third = await asyncio.gather(
                    service.submit(source, target),
                    service.submit(source, target),
                    # Structural equality coalesces, not object identity.
                    service.submit(rebuilt, target),
                )
                assert first is second is third
                assert service.stats.coalesce_hits == 2
                assert service.stats.completed == 1

        asyncio.run(scenario())

    def test_different_options_do_not_coalesce(self):
        async def scenario():
            async with SolveService(THREADS_ONLY) as service:
                source, target = cheap_instance()
                await asyncio.gather(
                    service.submit(source, target, width_threshold=1),
                    service.submit(source, target, width_threshold=4),
                )
                assert service.stats.coalesce_hits == 0
                assert service.stats.completed == 2

        asyncio.run(scenario())


class TestTimeouts:
    def test_timeout_raises_cleanly_and_does_not_poison(self):
        async def scenario():
            async with SolveService(THREADS_ONLY) as service:
                source, target = heavy_instance(seed=5)
                with pytest.raises(SolveTimeoutError):
                    await service.submit(source, target, timeout=1e-4)
                assert service.stats.timeouts == 1
                # The computation was not cancelled and nothing about the
                # timeout was cached: a retry gets the right answer.
                retry = await service.submit(source, target, timeout=None)
                direct = service.pipeline.solve(source, target)
                assert retry.exists == direct.exists
                assert service.stats.failed == 0

        asyncio.run(scenario())

    def test_coalesced_waiter_timeout_leaves_others_unharmed(self):
        async def scenario():
            async with SolveService(THREADS_ONLY) as service:
                source, target = heavy_instance(seed=6)
                patient = service.submit(source, target)
                hasty = service.submit(source, target, timeout=1e-4)
                with pytest.raises(SolveTimeoutError):
                    await hasty
                solution = await patient
                assert solution.exists == service.pipeline.solve(
                    source, target
                ).exists

        asyncio.run(scenario())


class TestAdmissionControl:
    def test_overload_rejects_synchronously(self):
        config = ServiceConfig(
            thread_workers=1, process_workers=0, max_pending=2
        )

        async def scenario():
            async with SolveService(config) as service:
                waiters = [
                    service.submit(*heavy_instance(seed)) for seed in (1, 2)
                ]
                with pytest.raises(ServiceOverloadedError):
                    service.submit(*heavy_instance(3))
                assert service.stats.rejected == 1
                # Coalesced duplicates ride along even at capacity.
                duplicate = service.submit(*heavy_instance(1))
                results = await asyncio.gather(*waiters, duplicate)
                assert results[0] is results[2]

        asyncio.run(scenario())

    def test_submit_many_applies_backpressure_instead(self):
        config = ServiceConfig(
            thread_workers=2, process_workers=0, max_pending=3
        )
        pairs = [cheap_instance(seed) for seed in range(12)]

        async def scenario():
            async with SolveService(config) as service:
                solutions = await service.submit_many(pairs)
                assert len(solutions) == len(pairs)
                assert service.stats.rejected == 0
                assert service.stats.completed >= 1

        asyncio.run(scenario())


class TestPriorities:
    def test_high_priority_dispatches_before_low(self):
        config = ServiceConfig(
            thread_workers=1, process_workers=0, max_pending=64
        )

        async def scenario():
            async with SolveService(config) as service:
                order: list[str] = []

                async def tagged(label, awaitable):
                    await awaitable
                    order.append(label)

                # Occupy the single worker so the queue builds up behind it.
                blocker = service.submit(*slow_instance())
                await asyncio.sleep(0.05)
                low = service.submit(
                    *cheap_instance(1), priority=Priority.LOW
                )
                high = service.submit(
                    *cheap_instance(2), priority=Priority.HIGH
                )
                await asyncio.gather(
                    blocker, tagged("low", low), tagged("high", high)
                )
                assert order == ["high", "low"]

        asyncio.run(scenario())


class TestPriorityBump:
    def test_high_priority_duplicate_lifts_queued_original(self):
        config = ServiceConfig(
            thread_workers=1, process_workers=0, max_pending=64
        )

        async def scenario():
            async with SolveService(config) as service:
                order: list[str] = []

                async def tagged(label, awaitable):
                    await awaitable
                    order.append(label)

                blocker = service.submit(*slow_instance())
                await asyncio.sleep(0.05)
                low_a = service.submit(
                    *cheap_instance(1), priority=Priority.LOW
                )
                normal_b = service.submit(
                    *cheap_instance(2), priority=Priority.NORMAL
                )
                # A HIGH duplicate of the LOW request coalesces *and*
                # lifts the queued original ahead of NORMAL traffic.
                high_dup = service.submit(
                    *cheap_instance(1), priority=Priority.HIGH
                )
                await asyncio.gather(
                    blocker,
                    tagged("a", low_a),
                    tagged("b", normal_b),
                    tagged("a-dup", high_dup),
                )
                assert order.index("a") < order.index("b")
                assert service.stats.coalesce_hits == 1

        asyncio.run(scenario())


class TestStopSemantics:
    def test_stop_without_drain_wakes_backpressured_submitters(self):
        config = ServiceConfig(
            thread_workers=1, process_workers=0, max_pending=1
        )

        async def scenario():
            service = await SolveService(config).start()
            # Fill the only admission slot with a slow solve.
            blocker = service.submit(*slow_instance())
            batch = asyncio.create_task(
                service.submit_many(
                    [cheap_instance(seed) for seed in range(4)]
                )
            )
            await asyncio.sleep(0.05)  # let submit_many block on capacity
            stop_task = asyncio.create_task(service.stop(drain=False))
            with pytest.raises(ServiceClosedError):
                # stop() wakes the blocked submitter, whose retry then
                # observes the stopped service instead of hanging.
                await asyncio.wait_for(batch, timeout=30)
            await stop_task
            solution = await blocker  # already running → completed
            assert solution is not None

        asyncio.run(scenario())


class TestProcessBackend:
    def test_requests_route_to_process_pool_by_cost(self):
        config = ServiceConfig(
            thread_workers=2,
            process_workers=1,
            # Everything is "expensive": force the process path.
            process_cost_threshold=0.0,
        )

        async def scenario():
            async with SolveService(config) as service:
                source, target = cheap_instance()
                solution = await service.submit(source, target)
                assert service.stats.process_solves == 1
                assert service.stats.thread_solves == 0
                direct = service.pipeline.solve(source, target)
                assert solution.exists == direct.exists
                assert solution.homomorphism == direct.homomorphism
                assert solution.strategy == direct.strategy

        asyncio.run(scenario())


class TestStats:
    def test_snapshot_shape(self):
        async def scenario():
            async with SolveService(THREADS_ONLY) as service:
                await service.submit(*cheap_instance())
                return service.stats.snapshot()

        snapshot = asyncio.run(scenario())
        for key in (
            "submitted",
            "completed",
            "coalesce_hits",
            "max_queue_depth",
            "latency",
            "routes",
        ):
            assert key in snapshot
        assert snapshot["completed"] == 1
        assert snapshot["latency"]["count"] == 1
        # Every built-in route is enumerated, traffic or not.
        assert "backtracking" in snapshot["routes"]
        assert "horn-direct" in snapshot["routes"]
        total_route_count = sum(
            bucket["count"] for bucket in snapshot["routes"].values()
        )
        assert total_route_count == 1
