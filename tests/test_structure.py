"""Unit and property tests for finite relational structures."""

import pytest
from hypothesis import given

from repro.exceptions import VocabularyError
from repro.structures.structure import Structure, StructureBuilder
from repro.structures.vocabulary import Vocabulary

from conftest import structures

GRAPH = Vocabulary.from_arities({"E": 2})


def triangle() -> Structure:
    return Structure(
        GRAPH, range(3), {"E": {(0, 1), (1, 2), (2, 0)}}
    )


class TestConstruction:
    def test_universe_inferred_from_facts(self):
        s = Structure(GRAPH, (), {"E": {(0, 1)}})
        assert s.universe == {0, 1}

    def test_explicit_isolated_elements_kept(self):
        s = Structure(GRAPH, {5}, {"E": {(0, 1)}})
        assert 5 in s.universe

    def test_undeclared_relation_rejected(self):
        with pytest.raises(VocabularyError):
            Structure(GRAPH, (), {"F": {(0, 1)}})

    def test_wrong_width_rejected(self):
        with pytest.raises(VocabularyError):
            Structure(GRAPH, (), {"E": {(0, 1, 2)}})

    def test_missing_relations_default_empty(self):
        s = Structure(GRAPH, {0})
        assert s.relation("E") == frozenset()

    def test_relation_lookup_missing_raises(self):
        with pytest.raises(KeyError):
            triangle().relation("F")


class TestSizes:
    def test_len_is_universe_size(self):
        assert len(triangle()) == 3

    def test_num_facts(self):
        assert triangle().num_facts == 3

    def test_size_counts_elements_and_cells(self):
        # 3 elements + 3 binary tuples * 2 cells.
        assert triangle().size == 3 + 6

    def test_empty_structure(self):
        s = Structure(GRAPH)
        assert len(s) == 0 and s.num_facts == 0 and s.size == 0


class TestPredicates:
    def test_holds(self):
        s = triangle()
        assert s.holds("E", (0, 1))
        assert not s.holds("E", (1, 0))

    def test_is_boolean(self):
        assert Structure(GRAPH, {0, 1}, {"E": {(0, 1)}}).is_boolean
        assert not triangle().is_boolean
        assert Structure(GRAPH).is_boolean  # empty universe

    def test_occurrences_index(self):
        occurrences = triangle().occurrences()
        assert sorted(occurrences) == [0, 1, 2]
        # element 0 occurs in (0,1) at 0 and (2,0) at 1
        entries = {(name, fact, i) for name, fact, i in occurrences[0]}
        assert ("E", (0, 1), 0) in entries
        assert ("E", (2, 0), 1) in entries


class TestEquality:
    def test_equal_structures(self):
        assert triangle() == triangle()
        assert hash(triangle()) == hash(triangle())

    def test_unequal_on_facts(self):
        other = Structure(GRAPH, range(3), {"E": {(0, 1)}})
        assert triangle() != other

    def test_unequal_on_universe(self):
        bigger = Structure(
            GRAPH, range(4), {"E": {(0, 1), (1, 2), (2, 0)}}
        )
        assert triangle() != bigger


class TestDerived:
    def test_restrict_keeps_internal_facts(self):
        s = triangle().restrict({0, 1})
        assert s.universe == {0, 1}
        assert s.relation("E") == frozenset({(0, 1)})

    def test_restrict_outside_universe_rejected(self):
        with pytest.raises(VocabularyError):
            triangle().restrict({7})

    def test_rename_elements(self):
        s = triangle().rename_elements({0: "a", 1: "b", 2: "c"})
        assert s.universe == {"a", "b", "c"}
        assert s.holds("E", ("a", "b"))

    def test_rename_must_be_injective(self):
        with pytest.raises(VocabularyError):
            triangle().rename_elements({0: 1})

    def test_with_vocabulary_widens(self):
        wider = GRAPH.union(Vocabulary.from_arities({"P": 1}))
        s = triangle().with_vocabulary(wider)
        assert s.relation("P") == frozenset()
        assert s.relation("E") == triangle().relation("E")

    def test_with_vocabulary_cannot_narrow(self):
        with pytest.raises(VocabularyError):
            triangle().with_vocabulary(Vocabulary())


class TestBuilder:
    def test_incremental_build(self):
        builder = StructureBuilder()
        builder.add_fact("E", (1, 2)).add_fact("E", (2, 3))
        builder.add_element(9)
        s = builder.build()
        assert s.universe == {1, 2, 3, 9}
        assert s.holds("E", (1, 2))

    def test_declare_empty_relation(self):
        s = StructureBuilder().declare("P", 1).build()
        assert s.relation("P") == frozenset()

    def test_arity_clash_rejected(self):
        builder = StructureBuilder().add_fact("E", (1, 2))
        with pytest.raises(VocabularyError):
            builder.add_fact("E", (1, 2, 3))


class TestProperties:
    @given(structures())
    def test_facts_iteration_matches_relations(self, s):
        listed = list(s.facts())
        assert len(listed) == s.num_facts
        for name, fact in listed:
            assert s.holds(name, fact)

    @given(structures())
    def test_sorted_universe_is_stable_permutation(self, s):
        assert set(s.sorted_universe) == set(s.universe)
        assert len(s.sorted_universe) == len(s.universe)

    @given(structures())
    def test_restrict_to_full_universe_is_identity(self, s):
        assert s.restrict(s.universe) == s

    @given(structures())
    def test_size_formula(self, s):
        cells = sum(
            len(rel) * symbol.arity for symbol, rel in s.relations()
        )
        assert s.size == len(s) + cells
