"""Tests for the workload generators."""

import pytest

from repro.boolean.relations import boolean_relations_of
from repro.csp.generators import (
    bounded_treewidth_structure,
    coloring_instance,
    random_boolean_target,
    random_chain_query,
    random_k_tree,
    random_query,
    random_schaefer_target,
    random_star_query,
    random_structure,
    random_two_atom_query,
)
from repro.structures.vocabulary import Vocabulary
from repro.treewidth.decomposition import TreeDecomposition
from repro.treewidth.exact import exact_treewidth

BINARY = Vocabulary.from_arities({"R": 2})


class TestRandomStructure:
    def test_reproducible(self):
        a = random_structure(BINARY, 5, 6, seed=42)
        b = random_structure(BINARY, 5, 6, seed=42)
        assert a == b

    def test_elements_in_range(self):
        s = random_structure(BINARY, 4, 10, seed=0)
        assert s.universe == set(range(4))


class TestBooleanTargets:
    @pytest.mark.parametrize(
        "closure,flag",
        [
            ("horn", "is_horn"),
            ("dual_horn", "is_dual_horn"),
            ("bijunctive", "is_bijunctive"),
            ("affine", "is_affine"),
        ],
    )
    def test_closure_guarantees_class(self, closure, flag):
        for seed in range(10):
            target = random_schaefer_target(
                BINARY, 3, closure, seed=seed
            )
            relations = boolean_relations_of(target)
            assert all(getattr(r, flag) for r in relations.values())

    def test_no_closure_is_raw(self):
        target = random_boolean_target(BINARY, 3, seed=7)
        assert target.is_boolean


class TestQueries:
    def test_chain_query(self):
        q = random_chain_query(4)
        assert len(q) == 4
        assert q.head_variables == ("X0", "X4")
        with pytest.raises(ValueError):
            random_chain_query(0)

    def test_star_query(self):
        q = random_star_query(3)
        assert len(q) == 3
        assert q.head_variables == ("C",)
        with pytest.raises(ValueError):
            random_star_query(0)

    def test_random_query_shape(self):
        q = random_query(5, 4, BINARY, head_width=2, seed=1)
        assert q.arity == 2
        assert all(atom.relation == "R" for atom in q.atoms)

    def test_two_atom_query_class(self):
        for seed in range(10):
            q = random_two_atom_query(3, 4, seed=seed)
            assert q.is_two_atom


class TestKTrees:
    def test_decomposition_is_valid_and_width_bounded(self):
        for seed in range(8):
            structure, bags, tree_edges = bounded_treewidth_structure(
                10, 2, seed=seed
            )
            decomposition = TreeDecomposition(bags, tree_edges)
            decomposition.validate(structure)
            assert decomposition.width <= 2

    def test_full_k_tree_has_exact_width(self):
        edges, bags, tree_edges = random_k_tree(10, 2, seed=3)
        from repro.structures.graphs import graph_structure

        g = graph_structure(range(10), edges)
        assert exact_treewidth(g) == 2

    def test_too_few_vertices_rejected(self):
        with pytest.raises(ValueError):
            random_k_tree(2, 3)

    def test_sparse_subgraph_width_still_bounded(self):
        structure, bags, tree_edges = bounded_treewidth_structure(
            12, 2, edge_keep_probability=0.5, seed=1
        )
        assert exact_treewidth(structure) <= 2


class TestColoringInstance:
    def test_shape(self):
        from repro.structures.graphs import cycle

        source, target = coloring_instance(cycle(5), 3)
        assert len(target) == 3
        assert source == cycle(5)
