"""Tests for AI-style CSP instances and the homomorphism bridge."""

import pytest
from hypothesis import given, settings

from repro.csp.instance import (
    Constraint,
    CSPInstance,
    instance_from_homomorphism,
)
from repro.exceptions import VocabularyError
from repro.structures.graphs import clique, cycle
from repro.structures.homomorphism import (
    find_homomorphism,
    homomorphism_exists,
)

from conftest import structure_pairs


def coloring_csp(n_vertices, edges, colors):
    variables = list(range(n_vertices))
    domains = {v: set(range(colors)) for v in variables}
    allowed = frozenset(
        (a, b) for a in range(colors) for b in range(colors) if a != b
    )
    constraints = [Constraint((u, v), allowed) for u, v in edges]
    return CSPInstance(variables, domains, constraints)


class TestConstraint:
    def test_satisfied_by(self):
        c = Constraint(("x", "y"), frozenset({(0, 1)}))
        assert c.satisfied_by({"x": 0, "y": 1})
        assert not c.satisfied_by({"x": 1, "y": 0})

    def test_width_mismatch_rejected(self):
        with pytest.raises(VocabularyError):
            Constraint(("x",), frozenset({(0, 1)}))


class TestCSPInstance:
    def test_undeclared_scope_variable_rejected(self):
        with pytest.raises(VocabularyError):
            CSPInstance(
                ["x"],
                {"x": {0}},
                [Constraint(("x", "y"), frozenset({(0, 0)}))],
            )

    def test_is_solution(self):
        instance = coloring_csp(3, [(0, 1), (1, 2)], 2)
        assert instance.is_solution({0: 0, 1: 1, 2: 0})
        assert not instance.is_solution({0: 0, 1: 0, 2: 1})
        assert not instance.is_solution({0: 0, 1: 1})       # partial
        assert not instance.is_solution({0: 9, 1: 1, 2: 0})  # off-domain

    def test_to_homomorphism_roundtrip_solvability(self):
        triangle = coloring_csp(3, [(0, 1), (1, 2), (2, 0)], 2)
        source, target = triangle.to_homomorphism()
        assert not homomorphism_exists(source, target)

        square = coloring_csp(4, [(0, 1), (1, 2), (2, 3), (3, 0)], 2)
        source, target = square.to_homomorphism()
        hom = find_homomorphism(source, target)
        assert hom is not None
        solution = {v: hom[v] for v in square.variables}
        assert square.is_solution(solution)

    def test_domain_constraints_respected(self):
        instance = CSPInstance(
            ["x", "y"],
            {"x": {0}, "y": {0, 1}},
            [Constraint(("x", "y"), frozenset({(0, 1), (1, 0)}))],
        )
        source, target = instance.to_homomorphism()
        hom = find_homomorphism(source, target)
        assert hom is not None and hom["x"] == 0 and hom["y"] == 1

    def test_empty_domain_unsolvable(self):
        instance = CSPInstance(["x"], {"x": set()}, [])
        source, target = instance.to_homomorphism()
        assert not homomorphism_exists(source, target)


class TestFromHomomorphism:
    def test_coloring_roundtrip(self):
        instance = instance_from_homomorphism(cycle(5), clique(3))
        assert len(instance.variables) == 5
        assert len(instance.constraints) == cycle(5).num_facts
        solution = {
            v: h for v, h in find_homomorphism(cycle(5), clique(3)).items()
        }
        assert instance.is_solution(solution)

    def test_vocabulary_mismatch_rejected(self):
        from repro.structures.structure import Structure
        from repro.structures.vocabulary import Vocabulary

        other = Structure(Vocabulary.from_arities({"F": 1}))
        with pytest.raises(VocabularyError):
            instance_from_homomorphism(cycle(3), other)

    @given(structure_pairs(max_elements=3, max_facts=4))
    @settings(max_examples=40, deadline=None)
    def test_solutions_coincide_with_homomorphisms(self, pair):
        a, b = pair
        instance = instance_from_homomorphism(a, b)
        hom = find_homomorphism(a, b)
        if hom is None:
            source, target = instance.to_homomorphism()
            assert not homomorphism_exists(source, target)
        else:
            assert instance.is_solution(hom)
