"""Unit tests for the compiled bitset kernel."""

import pytest

from repro.core.pipeline import SolveContext, SolverPipeline, StructureCache
from repro.csp.ac3 import establish_arc_consistency
from repro.csp.backtracking import degree_order, solve_backtracking
from repro.kernel import (
    CompiledSource,
    CompiledTarget,
    compile_source,
    compile_target,
    initial_domains,
    propagate,
    search_homomorphisms,
    solve,
    spoiler_wins_k2,
)
from repro.kernel.engine import (
    default_engine,
    resolve_engine,
    set_default_engine,
    use_engine,
)
from repro.pebble.game import spoiler_wins
from repro.structures.graphs import clique, cycle, path
from repro.structures.homomorphism import SearchStats, find_homomorphism
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

GRAPH = Vocabulary.from_arities({"E": 2})
MIXED = Vocabulary.from_arities({"R": 3, "U": 1})


class TestCompile:
    def test_values_follow_sorted_universe(self):
        target = cycle(4)
        compiled = compile_target(target)
        assert compiled.values == target.sorted_universe
        assert compiled.full_mask == (1 << 4) - 1

    def test_supports_index_tuples_by_position_and_value(self):
        vocabulary = Vocabulary.from_arities({"R": 2})
        target = Structure(
            vocabulary, range(3), {"R": {(0, 1), (0, 2), (1, 2)}}
        )
        compiled = compile_target(target)
        rows = compiled.tuples["R"]
        assert sorted(rows) == [(0, 1), (0, 2), (1, 2)]
        supports = compiled.supports["R"]
        # every tuple's bit is set in the support of each of its values
        for j, row in enumerate(rows):
            for position, value in enumerate(row):
                assert supports[position][value] >> j & 1
        # value 0 at position 0 supports tuples (0,1) and (0,2) only
        assert supports[0][0].bit_count() == 2
        assert supports[0][1].bit_count() == 1
        assert supports[1][2].bit_count() == 2
        # position masks: values occurring at each position
        assert compiled.position_masks["R"] == (0b011, 0b110)
        assert compiled.all_tuples_masks["R"] == 0b111

    def test_compilation_memoized_on_structure(self):
        target = cycle(3)
        assert compile_target(target) is compile_target(target)
        assert compile_source(target) is compile_source(target)
        # idempotent on already-compiled arguments
        compiled = compile_target(target)
        assert compile_target(compiled) is compiled

    def test_source_scopes_and_occurrences(self):
        source = Structure(
            MIXED, range(3), {"R": {(0, 1, 1)}, "U": {(2,)}}
        )
        compiled = compile_source(source)
        assert isinstance(compiled, CompiledSource)
        assert set(compiled.constraints) == {("R", (0, 1, 1)), ("U", (2,))}
        (r_index,) = [
            i
            for i, (name, _scope) in enumerate(compiled.constraints)
            if name == "R"
        ]
        # each constraint listed once per touched variable
        assert compiled.constraints_of[1] == (r_index,)
        assert compiled.degrees == (1, 2, 1)

    def test_degree_order_matches_facade(self):
        star = Structure(
            GRAPH, range(4), {"E": {(0, 1), (0, 2), (0, 3)}}
        )
        assert degree_order(star)[0] == 0
        assert compile_source(star).degree_order[0] == 0

    def test_initial_domains_node_consistency(self):
        vocabulary = Vocabulary.from_arities({"R": 2})
        target = Structure(vocabulary, range(3), {"R": {(0, 1)}})
        source = Structure(vocabulary, range(2), {"R": {(0, 1)}})
        domains = initial_domains(compile_source(source), compile_target(target))
        assert domains == [0b001, 0b010]

    def test_initial_domains_wipeout(self):
        vocabulary = Vocabulary.from_arities({"R": 2})
        target = Structure(vocabulary, {0, 1}, {"R": {(0, 1)}})
        source = Structure(vocabulary, {0}, {"R": {(0, 0)}})
        assert (
            initial_domains(compile_source(source), compile_target(target))
            is None
        )


class TestPropagate:
    def test_chain_pruning_to_singletons(self):
        vocabulary = Vocabulary.from_arities({"R": 2})
        target = Structure(
            vocabulary, {0, 1, 2}, {"R": {(0, 1), (0, 2), (1, 2)}}
        )
        source = Structure(vocabulary, range(3), {"R": {(0, 1), (1, 2)}})
        csource = compile_source(source)
        ctarget = compile_target(target)
        domains = initial_domains(csource, ctarget)
        assert propagate(csource, ctarget, domains) is not None
        assert domains == [0b001, 0b010, 0b100]

    def test_wipeout_returns_none(self):
        vocabulary = Vocabulary.from_arities({"R": 2})
        target = Structure(vocabulary, {0, 1}, {"R": {(0, 1)}})
        source = Structure(vocabulary, range(2), {"R": {(0, 1), (1, 0)}})
        csource = compile_source(source)
        ctarget = compile_target(target)
        assert propagate(csource, ctarget, [0b11, 0b11]) is None

    def test_ac3_facade_matches_legacy_on_custom_domains(self):
        a, b = cycle(4), clique(2)
        custom = {e: {0} for e in a.universe}
        assert establish_arc_consistency(a, b, custom) is None
        assert establish_arc_consistency(a, b, custom, engine="legacy") is None

    def test_untouched_elements_pass_through(self):
        lonely = Structure(GRAPH, {0, 1}, {"E": set()})
        target = clique(2)
        got = establish_arc_consistency(lonely, target, {0: {0}, 1: {1}})
        assert got == {0: {0}, 1: {1}}

    def test_out_of_universe_domains_match_legacy(self):
        # a touched element whose given domain holds only values outside
        # the target universe: the reference prunes them all (wipe-out)
        looped = Structure(GRAPH, {0}, {"E": {(0, 0)}})
        target = Structure(GRAPH, {0, 1}, {"E": {(0, 0), (1, 1)}})
        bogus = {0: {"nope"}}
        assert establish_arc_consistency(looped, target, bogus) is None
        assert (
            establish_arc_consistency(looped, target, bogus, engine="legacy")
            is None
        )
        # ... but a given *empty* set on that element is never pruned by
        # the reference loop, so it passes through in both engines
        empty = {0: set()}
        assert establish_arc_consistency(looped, target, empty) == empty
        assert (
            establish_arc_consistency(looped, target, empty, engine="legacy")
            == empty
        )
        # mixed in- and out-of-universe values: the survivors agree
        mixed = {0: {0, "nope"}}
        assert establish_arc_consistency(
            looped, target, mixed
        ) == establish_arc_consistency(looped, target, mixed, engine="legacy")


class TestSearch:
    def test_matches_legacy_tree_exactly(self):
        from repro.structures.homomorphism import all_homomorphisms

        for a, b in [
            (cycle(6), clique(2)),
            (cycle(5), clique(2)),
            (cycle(5), clique(3)),
            (clique(3), clique(3)),
            (path(5), clique(2)),
        ]:
            kernel_stats, reference_stats = SearchStats(), SearchStats()
            kernel = list(search_homomorphisms(a, b, stats=kernel_stats))
            reference = list(
                all_homomorphisms(a, b, stats=reference_stats, engine="legacy")
            )
            assert kernel == reference
            assert (kernel_stats.nodes, kernel_stats.backtracks) == (
                reference_stats.nodes,
                reference_stats.backtracks,
            )

    def test_fixed_and_order(self):
        pinned = next(
            search_homomorphisms(cycle(4), clique(2), fixed={0: 1})
        )
        assert pinned[0] == 1
        assert (
            next(search_homomorphisms(cycle(4), clique(2), order=[3, 2, 1, 0]))
            is not None
        )
        assert (
            list(search_homomorphisms(cycle(4), clique(2), fixed={0: 0, 1: 0}))
            == []
        )

    def test_empty_source_and_empty_target(self):
        empty = Structure(GRAPH)
        assert list(search_homomorphisms(empty, cycle(3))) == [{}]
        assert solve(cycle(3), empty) is None

    def test_solve_uses_propagated_domains(self):
        assignment = solve(cycle(6), clique(2))
        assert assignment is not None
        vocabulary = Vocabulary.from_arities({"R": 2})
        target = Structure(vocabulary, {0, 1}, {"R": {(0, 1)}})
        source = Structure(vocabulary, {0}, {"R": {(0, 0)}})
        assert solve(source, target) is None

    def test_solve_backtracking_preprocess_shortcut_keeps_stats_zero(self):
        stats = SearchStats()
        vocabulary = Vocabulary.from_arities({"R": 2})
        target = Structure(vocabulary, {0, 1}, {"R": {(0, 1)}})
        source = Structure(vocabulary, {0}, {"R": {(0, 0)}})
        assert solve_backtracking(source, target, stats=stats) is None
        assert stats.nodes == 0


class TestPebble2:
    def test_agrees_with_generic_game(self):
        instances = [
            (cycle(5), clique(2)),
            (cycle(4), clique(2)),
            (clique(3), clique(2)),
            (path(4), clique(3)),
            (Structure(GRAPH, {0}, {"E": {(0, 0)}}), clique(2)),
        ]
        for a, b in instances:
            # reference side pinned to the legacy deletion loop — the
            # default engine is the same kernel as spoiler_wins_k2
            assert spoiler_wins_k2(a, b) == spoiler_wins(
                a, b, 2, engine="legacy"
            )

    def test_higher_arity_facts_ignored_like_reference(self):
        vocabulary = Vocabulary.from_arities({"R": 3})
        # one fact over three distinct elements: under two pebbles it is
        # never fully covered, so neither implementation refutes
        source = Structure(vocabulary, range(3), {"R": {(0, 1, 2)}})
        target = Structure(vocabulary, {0, 1}, {"R": set()})
        assert spoiler_wins(source, target, 2, engine="legacy") is False
        assert spoiler_wins_k2(source, target) is False

    def test_empty_cases(self):
        empty = Structure(GRAPH)
        assert spoiler_wins_k2(empty, clique(2)) is False
        assert spoiler_wins_k2(cycle(3), empty) is True


class TestEngineFlag:
    def test_default_follows_environment(self):
        import os

        assert default_engine() == os.environ.get("REPRO_ENGINE", "kernel")
        assert resolve_engine(None) == default_engine()

    def test_use_engine_restores(self):
        before = default_engine()
        other = "legacy" if before == "kernel" else "kernel"
        with use_engine(other):
            assert default_engine() == other
        assert default_engine() == before

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            resolve_engine("c")
        with pytest.raises(ValueError):
            set_default_engine("fast")
        with pytest.raises(ValueError):
            find_homomorphism(cycle(3), clique(3), engine="bogus")


class TestCacheIntegration:
    def test_structure_cache_compiles_once_per_fingerprint(self):
        cache = StructureCache()
        first = cycle(4)
        rebuilt = Structure(GRAPH, range(4), {"E": first.relation("E")})
        compiled = cache.compiled_target(first)
        assert isinstance(compiled, CompiledTarget)
        assert cache.stats.misses == 1
        # structurally equal rebuild hits the fingerprint key
        assert cache.compiled_target(rebuilt) is compiled
        assert cache.stats.hits == 1
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0

    def test_solve_context_memoizes_per_solve(self):
        cache = StructureCache()
        context = SolveContext(cache=cache)
        target = clique(2)
        assert context.compiled_target(target) is context.compiled_target(
            target
        )
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_pipeline_backtracking_route_still_correct(self):
        # clique source: width 4 skips the treewidth route, non-Boolean
        # target skips Schaefer — the kernel-backed fallback decides it
        pipeline = SolverPipeline()
        solution = pipeline.solve(clique(5), clique(5))
        assert solution.strategy == "backtracking"
        assert solution.exists
        refuted = pipeline.solve(clique(5), clique(4))
        assert refuted.strategy == "backtracking"
        assert not refuted.exists

    def test_pipeline_pebble_fast_path(self):
        # K5 plus a loop: high-width source, and the loop wipes the
        # k=2 singleton domain, so the fast path refutes
        looped = Structure(
            GRAPH, range(5), {"E": set(clique(5).relation("E")) | {(0, 0)}}
        )
        pipeline = SolverPipeline()
        solution = pipeline.solve(
            looped, clique(4), try_pebble_refutation=2
        )
        assert solution.strategy == "pebble-refutation(k=2)"
        assert not solution.exists
        # a non-refutable instance falls through to backtracking
        fallthrough = pipeline.solve(
            clique(5), clique(5), try_pebble_refutation=2
        )
        assert fallthrough.strategy == "backtracking"
        assert fallthrough.exists
