"""Tests for the direct quadratic algorithms of Theorem 3.4.

Every solver is cross-checked against the generic backtracking search on
random instances — hom existence must agree and returned maps must verify.
"""

import pytest
from hypothesis import given, settings

from repro.boolean.direct import (
    solve_bijunctive_csp,
    solve_dual_horn_csp,
    solve_horn_csp,
)
from repro.exceptions import NotSchaeferError
from repro.structures.homomorphism import (
    homomorphism_exists,
    is_homomorphism,
)
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

from conftest import boolean_structures, structures

BINARY = Vocabulary.from_arities({"R": 2})


def _boolean(vocabulary, relations):
    return Structure(vocabulary, {0, 1}, relations)


class TestHornDirect:
    def test_forced_chain(self):
        # R = {(1,1),(0,0),(1,0)} wait -- use implication-like relation
        target = _boolean(BINARY, {"R": {(1, 1), (0, 0), (0, 1)}})
        # facts: chain 0-1, 1-2; relation says: first=1 forces second=1
        source = Structure(BINARY, range(3), {"R": {(0, 1), (1, 2)}})
        hom = solve_horn_csp(source, target)
        assert hom is not None
        assert is_homomorphism(hom, source, target)

    def test_unsatisfiable(self):
        # R needs exactly (1,0); loop fact (a,a) cannot be satisfied
        target = _boolean(BINARY, {"R": {(1, 0)}})
        source = Structure(BINARY, {0}, {"R": {(0, 0)}})
        assert solve_horn_csp(source, target) is None

    def test_empty_target_relation(self):
        target = _boolean(BINARY, {"R": set()})
        source = Structure(BINARY, range(2), {"R": {(0, 1)}})
        assert solve_horn_csp(source, target) is None

    def test_source_with_no_facts(self):
        target = _boolean(BINARY, {"R": {(1, 1)}})
        source = Structure(BINARY, range(3), {})
        hom = solve_horn_csp(source, target)
        assert hom is not None and set(hom.values()) <= {0, 1}

    def test_non_horn_rejected(self):
        target = _boolean(BINARY, {"R": {(0, 1), (1, 0)}})
        source = Structure(BINARY, range(2), {"R": {(0, 1)}})
        with pytest.raises(NotSchaeferError):
            solve_horn_csp(source, target)

    def test_minimality_of_one_set(self):
        # all-ones forced only where required: target {(1,1),(0,0)}
        target = _boolean(BINARY, {"R": {(1, 1), (0, 0)}})
        source = Structure(BINARY, range(4), {"R": {(0, 1), (2, 3)}})
        hom = solve_horn_csp(source, target)
        # minimal model maps everything to 0
        assert hom == {0: 0, 1: 0, 2: 0, 3: 0}

    @given(structures(BINARY, max_elements=4, max_facts=5),
           boolean_structures(closure="horn", vocabulary=BINARY))
    @settings(max_examples=60, deadline=None)
    def test_against_backtracking(self, source, target):
        hom = solve_horn_csp(source, target)
        assert (hom is not None) == homomorphism_exists(source, target)
        if hom is not None:
            assert is_homomorphism(hom, source, target)


class TestDualHornDirect:
    def test_simple(self):
        target = _boolean(BINARY, {"R": {(0, 0), (1, 1), (1, 0)}})
        source = Structure(BINARY, range(3), {"R": {(0, 1), (1, 2)}})
        hom = solve_dual_horn_csp(source, target)
        assert hom is not None and is_homomorphism(hom, source, target)

    def test_non_dual_horn_rejected(self):
        target = _boolean(BINARY, {"R": {(0, 1), (1, 0)}})
        source = Structure(BINARY, range(2), {"R": {(0, 1)}})
        with pytest.raises(NotSchaeferError):
            solve_dual_horn_csp(source, target)

    @given(structures(BINARY, max_elements=4, max_facts=5),
           boolean_structures(closure="dual_horn", vocabulary=BINARY))
    @settings(max_examples=60, deadline=None)
    def test_against_backtracking(self, source, target):
        hom = solve_dual_horn_csp(source, target)
        assert (hom is not None) == homomorphism_exists(source, target)
        if hom is not None:
            assert is_homomorphism(hom, source, target)


class TestBijunctiveDirect:
    def test_two_coloring(self):
        target = _boolean(BINARY, {"R": {(0, 1), (1, 0)}})
        # even cycle of facts
        source = Structure(
            BINARY, range(4), {"R": {(0, 1), (1, 2), (2, 3), (3, 0)}}
        )
        hom = solve_bijunctive_csp(source, target)
        assert hom is not None and is_homomorphism(hom, source, target)

    def test_odd_cycle_unsat(self):
        target = _boolean(BINARY, {"R": {(0, 1), (1, 0)}})
        source = Structure(
            BINARY, range(3), {"R": {(0, 1), (1, 2), (2, 0)}}
        )
        assert solve_bijunctive_csp(source, target) is None

    def test_unit_propagation_pre_phase(self):
        # column 0 is constantly 1: every first component forced to 1
        target = _boolean(BINARY, {"R": {(1, 0), (1, 1)}})
        source = Structure(BINARY, range(2), {"R": {(0, 1)}})
        hom = solve_bijunctive_csp(source, target)
        assert hom is not None and hom[0] == 1

    def test_empty_target_relation(self):
        target = _boolean(BINARY, {"R": set()})
        source = Structure(BINARY, range(2), {"R": {(0, 1)}})
        assert solve_bijunctive_csp(source, target) is None

    def test_non_bijunctive_rejected(self):
        vocabulary = Vocabulary.from_arities({"R": 3})
        target = Structure(
            vocabulary,
            {0, 1},
            {"R": {(1, 0, 0), (0, 1, 0), (0, 0, 1)}},
        )
        source = Structure(vocabulary, range(3), {"R": {(0, 1, 2)}})
        with pytest.raises(NotSchaeferError):
            solve_bijunctive_csp(source, target)

    @given(structures(BINARY, max_elements=4, max_facts=5),
           boolean_structures(closure="bijunctive", vocabulary=BINARY))
    @settings(max_examples=80, deadline=None)
    def test_against_backtracking(self, source, target):
        hom = solve_bijunctive_csp(source, target)
        assert (hom is not None) == homomorphism_exists(source, target)
        if hom is not None:
            assert is_homomorphism(hom, source, target)
