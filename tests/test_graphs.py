"""Tests for graph↔structure conversions and the paper's stock graphs."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures.graphs import (
    clique,
    cycle,
    digraph_structure,
    directed_cycle,
    graph_structure,
    is_two_colorable,
    path,
    random_digraph,
    random_graph,
    to_networkx,
)
from repro.structures.homomorphism import homomorphism_exists


class TestConstructors:
    def test_graph_structure_symmetric(self):
        g = graph_structure([0, 1], [(0, 1)])
        assert g.holds("E", (0, 1)) and g.holds("E", (1, 0))

    def test_digraph_structure_directed(self):
        g = digraph_structure([0, 1], [(0, 1)])
        assert g.holds("E", (0, 1)) and not g.holds("E", (1, 0))

    def test_clique_edges(self):
        k3 = clique(3)
        assert len(k3) == 3 and k3.num_facts == 6

    def test_clique_k1_has_no_edges(self):
        assert clique(1).num_facts == 0

    def test_path_structure(self):
        p = path(4)
        assert len(p) == 4 and p.num_facts == 6  # 3 symmetric edges

    def test_single_vertex_path(self):
        assert len(path(1)) == 1 and path(1).num_facts == 0

    def test_cycle_structure(self):
        c = cycle(5)
        assert len(c) == 5 and c.num_facts == 10

    def test_directed_cycle(self):
        c = directed_cycle(4)
        assert c.holds("E", (3, 0)) and not c.holds("E", (0, 3))

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            clique(0)
        with pytest.raises(ValueError):
            path(0)
        with pytest.raises(ValueError):
            cycle(2)
        with pytest.raises(ValueError):
            directed_cycle(0)


class TestRandomGraphs:
    def test_random_graph_seeded_reproducible(self):
        assert random_graph(8, 0.4, seed=1) == random_graph(8, 0.4, seed=1)

    def test_random_graph_density_extremes(self):
        assert random_graph(5, 0.0, seed=1).num_facts == 0
        full = random_graph(5, 1.0, seed=1)
        assert full.num_facts == 5 * 4  # symmetric pairs

    def test_random_digraph_no_self_loops(self):
        g = random_digraph(6, 1.0, seed=3)
        assert all(u != v for u, v in g.relation("E"))


class TestColorabilitySemantics:
    def test_kcoloring_is_hom_into_clique(self):
        # Petersen graph is 3-chromatic
        petersen = nx.petersen_graph()
        g = graph_structure(petersen.nodes, petersen.edges)
        assert not homomorphism_exists(g, clique(2))
        assert homomorphism_exists(g, clique(3))

    @given(st.integers(min_value=3, max_value=9))
    @settings(deadline=None)
    def test_cycle_two_colorability(self, n):
        assert is_two_colorable(cycle(n)) == (n % 2 == 0)
        assert homomorphism_exists(cycle(n), clique(2)) == (n % 2 == 0)

    def test_self_loop_not_two_colorable(self):
        g = digraph_structure([0], [(0, 0)])
        assert not is_two_colorable(g)

    def test_hom_to_c4_implies_two_colorable(self):
        # One direction of the Example 3.8 aside: homomorphisms compose and
        # C4 is 2-colorable, so G -> C4 forces G 2-colorable.  (The converse
        # stated in the paper is loose for general digraphs: the directed
        # 6-cycle is 2-colorable yet maps to the directed C4 only when its
        # length is divisible by 4.)
        for seed in range(10):
            g = random_digraph(5, 0.3, seed=seed)
            if homomorphism_exists(g, directed_cycle(4)):
                assert is_two_colorable(g)

    def test_directed_cycles_into_c4_mod_4(self):
        c4 = directed_cycle(4)
        for n in (4, 8, 12):
            assert homomorphism_exists(directed_cycle(n), c4)
        for n in (3, 5, 6, 7, 10):
            assert not homomorphism_exists(directed_cycle(n), c4)


class TestNetworkxRoundtrip:
    def test_to_networkx_undirected(self):
        g = to_networkx(cycle(4))
        assert g.number_of_nodes() == 4 and g.number_of_edges() == 4

    def test_to_networkx_directed(self):
        g = to_networkx(directed_cycle(4), directed=True)
        assert g.number_of_edges() == 4
        assert g.has_edge(0, 1) and not g.has_edge(1, 0)
