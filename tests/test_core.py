"""Tests for the core API: HomomorphismProblem and the uniform solver."""

import pytest
from hypothesis import given, settings

from repro.core.problem import HomomorphismProblem
from repro.core.solver import Solution, solve
from repro.cq.containment import contains
from repro.cq.evaluation import holds
from repro.cq.parser import parse_query
from repro.csp.instance import Constraint, CSPInstance
from repro.exceptions import VocabularyError
from repro.structures.graphs import (
    clique,
    cycle,
    directed_cycle,
    random_digraph,
)
from repro.structures.homomorphism import (
    homomorphism_exists,
    is_homomorphism,
)
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

from conftest import structure_pairs


class TestHomomorphismProblem:
    def test_vocabulary_mismatch_rejected(self):
        with pytest.raises(VocabularyError):
            HomomorphismProblem(
                cycle(3), Structure(Vocabulary.from_arities({"F": 2}))
            )

    def test_from_containment(self):
        q1 = parse_query("Q(X) :- E(X, Y), E(Y, Z).")
        q2 = parse_query("Q(X) :- E(X, Y).")
        problem = HomomorphismProblem.from_containment(q1, q2)
        # Q1 <= Q2 iff a homomorphism exists for this instance
        assert homomorphism_exists(problem.source, problem.target) == (
            contains(q1, q2)
        )

    def test_from_containment_arity_mismatch(self):
        q1 = parse_query("Q(X) :- E(X, Y).")
        q2 = parse_query("Q(X, Y) :- E(X, Y).")
        with pytest.raises(VocabularyError):
            HomomorphismProblem.from_containment(q1, q2)

    def test_from_csp(self):
        instance = CSPInstance(
            ["a", "b"],
            {"a": {0, 1}, "b": {0, 1}},
            [Constraint(("a", "b"), frozenset({(0, 1), (1, 0)}))],
        )
        problem = HomomorphismProblem.from_csp(instance)
        assert homomorphism_exists(problem.source, problem.target)

    def test_to_containment(self):
        problem = HomomorphismProblem(cycle(6), clique(2))
        qb, qa = problem.to_containment()
        assert contains(qb, qa)  # C6 -> K2 so Q_{K2} <= Q_{C6}
        problem_odd = HomomorphismProblem(cycle(5), clique(2))
        qb2, qa2 = problem_odd.to_containment()
        assert not contains(qb2, qa2)

    def test_to_evaluation(self):
        problem = HomomorphismProblem(cycle(6), clique(2))
        query, database = problem.to_evaluation()
        assert holds(query, database)
        problem_odd = HomomorphismProblem(cycle(5), clique(2))
        query2, database2 = problem_odd.to_evaluation()
        assert not holds(query2, database2)

    def test_check(self):
        problem = HomomorphismProblem(cycle(4), clique(2))
        assert problem.check({0: 0, 1: 1, 2: 0, 3: 1})
        assert not problem.check({0: 0, 1: 0, 2: 0, 3: 0})

    @given(structure_pairs(max_elements=3, max_facts=4))
    @settings(max_examples=25, deadline=None)
    def test_three_formulations_agree(self, pair):
        a, b = pair
        problem = HomomorphismProblem(a, b)
        direct = homomorphism_exists(a, b)
        qb, qa = problem.to_containment()
        query, database = problem.to_evaluation()
        assert contains(qb, qa) == direct
        assert holds(query, database) == direct


class TestUniformSolver:
    def test_schaefer_routing(self):
        c4 = directed_cycle(4)
        from repro.boolean.booleanize import booleanize

        bz = booleanize(random_digraph(5, 0.3, seed=1), c4)
        solution = solve(bz.source, bz.target)
        assert solution.strategy == "affine-gf2"

    def test_trivial_routing(self):
        vocabulary = Vocabulary.from_arities({"R": 2})
        target = Structure(vocabulary, {0, 1}, {"R": {(0, 0)}})
        source = Structure(vocabulary, range(3), {"R": {(0, 1)}})
        solution = solve(source, target)
        assert solution.strategy == "zero-valid"
        assert solution.exists

    def test_treewidth_routing(self):
        solution = solve(cycle(6), clique(3))
        assert solution.strategy.startswith("treewidth-dp")
        assert solution.exists

    def test_backtracking_fallback(self):
        # a clique source has huge width, forcing backtracking
        solution = solve(clique(6), clique(6), width_threshold=2)
        assert solution.strategy == "backtracking"
        assert solution.exists

    def test_pebble_refutation(self):
        # K4 -> K3 is 3-consistent (any 2-vertex partial coloring extends),
        # so the Spoiler needs all 4 pebbles to expose the contradiction.
        solution = solve(
            clique(4),
            clique(3),
            width_threshold=1,
            try_pebble_refutation=4,
        )
        assert solution.strategy == "pebble-refutation(k=4)"
        assert not solution.exists

    def test_pebble_refutation_insufficient_pebbles_falls_through(self):
        solution = solve(
            clique(4),
            clique(3),
            width_threshold=1,
            try_pebble_refutation=2,
        )
        assert solution.strategy == "backtracking"
        assert not solution.exists

    def test_solution_dataclass(self):
        solution = Solution({0: 1}, "test")
        assert solution.exists
        assert not Solution(None, "test").exists

    @given(structure_pairs(max_elements=4, max_facts=5))
    @settings(max_examples=50, deadline=None)
    def test_always_correct(self, pair):
        a, b = pair
        solution = solve(a, b)
        assert solution.exists == homomorphism_exists(a, b)
        if solution.exists:
            assert is_homomorphism(solution.homomorphism, a, b)

    @given(structure_pairs(max_elements=3, max_facts=4))
    @settings(max_examples=25, deadline=None)
    def test_correct_with_pebble_refutation(self, pair):
        a, b = pair
        solution = solve(a, b, width_threshold=0, try_pebble_refutation=2)
        assert solution.exists == homomorphism_exists(a, b)
