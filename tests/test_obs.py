"""The observability plane (P7): tracing, telemetry, calibration.

Covers the :mod:`repro.obs` package in isolation (span trees, registry
exposition, the flight recorder, the calibration log) and its wiring
through the stack: per-solve kernel counters on ``SolveStats.kernel``,
the ``repro`` logger hierarchy, and — the acceptance criterion — a
process-pool-backed service solve yielding *one* trace whose spans cover
the service dispatch and the in-worker kernel phases under the same
trace id.
"""

from __future__ import annotations

import asyncio
import json
import logging
import pathlib
import re

import pytest

from repro.core.pipeline import SolverPipeline
from repro.obs import (
    CalibrationLog,
    FlightRecorder,
    KERNEL_COUNTERS,
    LatencyHistogram,
    MetricsRegistry,
    Span,
    TraceLog,
    collect_kernel_counters,
    current_span,
    default_calibration,
    default_registry,
    get_logger,
    kcount,
    kernel_counter_name,
    kernel_metrics_enabled,
    maybe_span,
    observed_work,
    root_logger,
    set_kernel_metrics_enabled,
    span_scope,
)
from repro.service import ServiceConfig, SolveService
from repro.structures.graphs import clique, random_graph

SRC_ROOT = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"

#: Prometheus text format 0.0.4: a comment line or a sample line.
_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"  # labels
    r" (\+Inf|-Inf|NaN|-?[0-9][0-9.e+-]*)$"  # value
)


def assert_parses_as_prometheus(text: str) -> list[str]:
    """Validate exposition line-by-line; returns the sample lines."""
    samples = []
    for line in text.strip().splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert _SAMPLE_LINE.match(line), f"bad exposition line: {line!r}"
        samples.append(line)
    return samples


# -- spans ----------------------------------------------------------------


class TestSpan:
    def test_tree_export_shares_one_trace_id(self):
        root = Span.new_root("request", seq=7)
        child = root.child("plan")
        grandchild = child.child("kernel.search", nodes=3)
        grandchild.end()
        child.end()
        root.end()
        exported = root.export()
        ids = {node["trace_id"] for node in root.iter_spans()}
        assert ids == {root.trace_id}
        names = {node["name"] for node in root.iter_spans()}
        assert names == {"request", "plan", "kernel.search"}
        assert exported["attributes"] == {"seq": 7}
        assert exported["duration_ms"] >= 0.0
        # Round-trips through JSON (what the service's trace log holds).
        assert json.loads(root.to_json())["trace_id"] == root.trace_id

    def test_remote_graft_keeps_the_trace_id(self):
        root = Span.new_root("request")
        dispatch = root.child("backend.process")
        # The worker side: rebuilt from pickled coordinates only.
        remote = Span.new_remote(
            "worker.solve", dispatch.trace_id, dispatch.span_id
        )
        remote.child("pipeline.solve").end()
        remote.end()
        dispatch.add_exported(remote.export())
        dispatch.end()
        root.end()
        spans = list(root.iter_spans())
        assert {node["trace_id"] for node in spans} == {root.trace_id}
        assert "worker.solve" in {node["name"] for node in spans}
        by_name = {node["name"]: node for node in spans}
        assert by_name["worker.solve"]["parent_id"] == dispatch.span_id

    def test_maybe_span_is_shared_noop_without_ambient(self):
        assert current_span() is None
        scope_a = maybe_span("kernel.search")
        scope_b = maybe_span("kernel.dp")
        assert scope_a is scope_b  # the singleton fast path
        with scope_a as span:
            assert span is None
            scope_a.set(nodes=1)  # also a no-op, not an error

    def test_maybe_span_nests_and_restores_under_ambient(self):
        root = Span.new_root("request")
        with span_scope(root):
            with maybe_span("outer") as outer:
                assert current_span() is outer
                with maybe_span("inner", depth=2) as inner:
                    assert current_span() is inner
                    assert inner.parent_id == outer.span_id
                assert current_span() is outer
            assert current_span() is root
        assert current_span() is None
        assert [c.name for c in root.children] == ["outer"]
        assert [c.name for c in root.children[0].children] == ["inner"]

    def test_trace_log_is_bounded_and_searchable(self):
        log = TraceLog(capacity=2)
        exports = [Span.new_root(f"r{i}").export() for i in range(3)]
        for exported in exports:
            log.append(exported)
        assert len(log) == 2
        assert log.find(exports[0]["trace_id"]) is None  # evicted
        assert log.find(exports[2]["trace_id"])["name"] == "r2"
        assert log.last()["name"] == "r2"


# -- metrics --------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram_exposition_parses(self):
        registry = MetricsRegistry()
        requests = registry.counter("t_requests_total", "Requests.", ("route",))
        requests.inc(3, route="dp")
        requests.inc(route="search")
        depth = registry.gauge("t_queue_depth", "Depth.")
        depth.set(4)
        depth.dec()
        latency = registry.histogram(
            "t_latency_ms", "Latency.", buckets=(1.0, 10.0)
        )
        for value in (0.5, 5.0, 50.0):
            latency.observe(value)
        text = registry.exposition()
        samples = assert_parses_as_prometheus(text)
        assert 't_requests_total{route="dp"} 3' in samples
        assert "t_queue_depth 3" in samples
        # Cumulative buckets with the +Inf catch-all, sum and count.
        assert 't_latency_ms_bucket{le="1"} 1' in samples
        assert 't_latency_ms_bucket{le="10"} 2' in samples
        assert 't_latency_ms_bucket{le="+Inf"} 3' in samples
        assert "t_latency_ms_sum 55.5" in samples
        assert "t_latency_ms_count 3" in samples
        snapshot = registry.snapshot()
        assert snapshot["t_requests_total"]["kind"] == "counter"
        json.dumps(snapshot)  # JSON-ready

    def test_label_escaping_survives_exposition(self):
        registry = MetricsRegistry()
        registry.counter("t_esc_total", "", ("name",)).inc(
            name='a"b\\c\nd'
        )
        assert_parses_as_prometheus(registry.exposition())

    def test_type_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("t_family")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("t_family")

    def test_collectors_register_and_unregister(self):
        registry = MetricsRegistry()
        collector_counter = MetricsRegistry().counter("t_derived_total")
        collector_counter.inc(9)
        collector = lambda: (collector_counter,)  # noqa: E731
        registry.register_collector(collector)
        assert "t_derived_total 9" in registry.exposition()
        registry.unregister_collector(collector)
        assert "t_derived_total" not in registry.exposition()


class TestKernelCounters:
    def test_solve_populates_stats_kernel_and_the_registry(self):
        pipeline = SolverPipeline()
        solution = pipeline.solve(clique(3), random_graph(8, 0.7, seed=1))
        stats = solution.stats
        assert stats is not None and stats.kernel, (
            "an instrumented solve must carry its kernel counters"
        )
        exposition = default_registry().exposition()
        for key, value in stats.kernel.items():
            assert key in KERNEL_COUNTERS
            assert value >= 0
            assert kernel_counter_name(key) in exposition
        assert_parses_as_prometheus(exposition)

    def test_disabled_mode_records_nothing(self):
        previous = set_kernel_metrics_enabled(False)
        try:
            assert not kernel_metrics_enabled()
            with collect_kernel_counters() as bag:
                kcount("search.nodes", 100)
            assert bag == {}
        finally:
            set_kernel_metrics_enabled(previous)

    def test_nested_collection_scopes_shadow(self):
        with collect_kernel_counters() as outer:
            kcount("search.nodes", 1)
            with collect_kernel_counters() as inner:
                kcount("search.nodes", 5)
            kcount("search.backtracks", 2)
        assert inner == {"search.nodes": 5}
        assert outer == {"search.nodes": 1, "search.backtracks": 2}


# -- flight recorder ------------------------------------------------------


class TestFlightRecorder:
    def test_ring_bounds_and_counts(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(6):
            recorder.record("request.admitted", seq=index)
        recorder.record("worker.crash", error="boom")
        assert len(recorder) == 4
        assert recorder.total_recorded == 7
        assert recorder.dropped == 3
        counts = recorder.counts()
        assert counts == {"request.admitted": 3, "worker.crash": 1}
        crash = recorder.events("worker.crash")[0]
        assert crash["error"] == "boom" and crash["seq"] == 7
        dump = recorder.dump()
        assert dump["capacity"] == 4 and dump["dropped"] == 3
        json.loads(recorder.to_json())

    def test_capacity_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_RECORDER_SIZE", "7")
        assert FlightRecorder().capacity == 7


# -- satellite: timing sources and the histogram move ---------------------


class TestTimingHygiene:
    def test_no_wall_clock_deltas_anywhere_in_src(self):
        """Every duration in the repo comes from ``perf_counter`` (or
        ``monotonic`` for deadlines) — ``time.time()`` drifts with NTP
        and breaks latency math, so it must not appear at all."""
        offenders = [
            str(path.relative_to(SRC_ROOT))
            for path in sorted(SRC_ROOT.rglob("*.py"))
            if "time.time()" in path.read_text(encoding="utf-8")
        ]
        assert offenders == []

    def test_latency_histogram_reexport_is_the_same_class(self):
        from repro.obs.metrics import LatencyHistogram as moved
        from repro.service import LatencyHistogram as via_service
        from repro.service.stats import LatencyHistogram as via_stats

        assert via_stats is moved and via_service is moved
        histogram = LatencyHistogram(max_samples=4)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            histogram.record(value)
        assert histogram.count == 5
        assert histogram.percentile(100) == 5.0


# -- logger hierarchy -----------------------------------------------------


class TestLoggerHierarchy:
    def test_root_has_nullhandler_and_children_nest(self):
        root = root_logger()
        assert root.name == "repro"
        assert any(
            isinstance(handler, logging.NullHandler)
            for handler in root.handlers
        )
        child = get_logger("kernel")
        assert child.name == "repro.kernel"
        assert child.parent is root

    def test_breaker_transition_warns_with_structured_extra(self, caplog):
        from repro.service.resilience import CircuitBreaker

        breaker = CircuitBreaker("obs-test", threshold=1)
        with caplog.at_level(logging.WARNING, logger="repro"):
            breaker.record_failure()
        records = [
            record
            for record in caplog.records
            if getattr(record, "event", None) == "breaker.transition"
        ]
        assert records, "breaker transitions must log at WARNING"
        assert records[0].breaker == "obs-test"
        assert records[0].state == "open"
        assert records[0].name.startswith("repro.")


# -- calibration ----------------------------------------------------------


class _FakeStats:
    def __init__(self, plan, kernel, timings):
        self.plan = plan
        self.kernel = kernel
        self.timings = timings


class TestCalibration:
    def test_observe_solve_folds_plan_and_work_counter(self):
        log = CalibrationLog()
        log.observe_solve(
            _FakeStats(
                plan={"route": "search", "predicted_cost": 100.0},
                kernel={"search.nodes": 250, "search.backtracks": 3},
                timings={"total": 12.5},
            )
        )
        log.observe_solve(
            _FakeStats(
                plan={
                    "route": "dp",
                    "predicted_cost": 40.0,
                    "dp_fallback": "search-budget",
                },
                kernel={"dp.bag_cells": 20},
                timings={"total": 2.0},
            )
        )
        log.observe_solve(_FakeStats(plan=None, kernel=None, timings={}))
        assert len(log) == 2
        report = log.report()
        assert report["search"]["ratio_median"] == 2.5
        assert report["search"]["observed_median"] == 250
        assert report["dp"]["fallbacks"] == 1
        json.loads(log.to_json())

    def test_observed_work_picks_the_route_native_counter(self):
        kernel = {"search.nodes": 9, "dp.bag_cells": 4}
        assert observed_work("search", kernel) == 9
        assert observed_work("dp", kernel) == 4
        assert observed_work("pebble", kernel) is None
        assert observed_work("search", None) is None

    def test_planned_solve_feeds_the_default_log(self):
        log = default_calibration()
        before = len(log)
        pipeline = SolverPipeline()
        solution = pipeline.solve(
            clique(3), random_graph(8, 0.7, seed=1), plan=True
        )
        assert solution.stats is not None and solution.stats.plan
        assert len(log) == before + 1
        row = log.rows()[-1]
        assert row["route"] == solution.stats.plan["route"]
        assert row["predicted_cost"] > 0


# -- the service end-to-end (acceptance criteria) -------------------------


def _graph_instance():
    return clique(3), random_graph(10, 0.6, seed=5)


def _slow_instance():
    return clique(7), random_graph(26, 0.55, seed=2)


def _span_names(trace):
    names = []
    stack = [trace]
    while stack:
        node = stack.pop()
        names.append(node["name"])
        stack.extend(node.get("children", ()))
    return names


def _trace_ids(trace):
    ids = set()
    stack = [trace]
    while stack:
        node = stack.pop()
        ids.add(node["trace_id"])
        stack.extend(node.get("children", ()))
    return ids


class TestServiceTracing:
    def test_process_solve_is_one_trace_across_the_pool(self):
        """The acceptance criterion: a process-pool-backed submit yields
        a single trace covering service dispatch AND in-worker kernel
        phases, same trace id on both sides of the pickle."""
        config = ServiceConfig(
            thread_workers=1,
            process_workers=1,
            process_cost_threshold=0.0,
            trace=True,
        )

        async def scenario():
            async with SolveService(config) as service:
                await service.submit(*_graph_instance())
            return service

        service = asyncio.run(scenario())
        trace = service.trace_log.find(
            service.trace_log.last()["trace_id"]
        )
        assert trace["name"] == "request"
        assert len(_trace_ids(trace)) == 1, "one trace id end to end"
        names = _span_names(trace)
        assert "service.plan" in names
        assert "backend.process" in names
        assert "worker.solve" in names
        assert "pipeline.solve" in names
        assert any(name.startswith("strategy:") for name in names)
        assert any(name.startswith("kernel.") for name in names)
        assert trace["attributes"]["backend"] == "process"
        assert trace["attributes"]["outcome"] == "completed"
        counts = service.recorder.counts()
        assert counts.get("request.admitted") == 1
        assert counts.get("request.completed") == 1

    def test_thread_solve_traces_without_processes(self):
        config = ServiceConfig(
            thread_workers=1, process_workers=0, trace=True
        )

        async def scenario():
            async with SolveService(config) as service:
                await service.submit(*_graph_instance())
            return service

        service = asyncio.run(scenario())
        trace = service.trace_log.last()
        names = _span_names(trace)
        assert "backend.thread" in names
        assert "pipeline.solve" in names
        assert len(_trace_ids(trace)) == 1

    def test_coalesced_follower_links_to_the_leader_trace(self):
        config = ServiceConfig(
            thread_workers=1, process_workers=0, trace=True
        )

        async def scenario():
            async with SolveService(config) as service:
                leader = asyncio.ensure_future(
                    service.submit(*_slow_instance())
                )
                await asyncio.sleep(0.05)  # the leader is dispatched
                follower = asyncio.ensure_future(
                    service.submit(*_slow_instance())
                )
                await asyncio.gather(leader, follower)
                await asyncio.sleep(0)  # drain done-callbacks
                assert service.stats.coalesce_hits == 1
            return service

        service = asyncio.run(scenario())
        traces = service.trace_log.dump()
        leaders = [t for t in traces if t["name"] == "request"]
        followers = [t for t in traces if t["name"] == "request.coalesced"]
        assert len(leaders) == 1 and len(followers) == 1
        link = followers[0]["attributes"]
        assert link["link_trace_id"] == leaders[0]["trace_id"]
        assert followers[0]["trace_id"] != leaders[0]["trace_id"]

    def test_tracing_off_leaves_no_spans(self):
        config = ServiceConfig(
            thread_workers=1, process_workers=0, trace=False
        )

        async def scenario():
            async with SolveService(config) as service:
                await service.submit(*_graph_instance())
            return service

        service = asyncio.run(scenario())
        assert len(service.trace_log) == 0

    def test_trace_default_comes_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert ServiceConfig().trace is True
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert ServiceConfig().trace is False

    def test_service_exposition_parses_with_service_families(self):
        config = ServiceConfig(thread_workers=1, process_workers=0)

        async def scenario():
            async with SolveService(config) as service:
                await service.submit(*_graph_instance())
                text = service.exposition()
            return text

        text = asyncio.run(scenario())
        samples = assert_parses_as_prometheus(text)
        assert any(
            line.startswith("repro_service_requests_total") for line in samples
        )
        assert any(
            line.startswith('repro_service_solves_total{backend="thread"} ')
            for line in samples
        )
        assert any(
            line.startswith("repro_service_breaker_state") for line in samples
        )
        # Kernel counters share the same registry and exposition.
        assert "repro_kernel_" in text
