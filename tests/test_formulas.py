"""Tests for defining-formula construction (Theorem 3.2)."""

import pytest
from hypothesis import given, settings

from repro.boolean.formulas import (
    LinearEquation,
    affine_defining_formula,
    bijunctive_defining_formula,
    clauses_define,
    dual_horn_defining_formula,
    equations_define,
    horn_defining_formula,
)
from repro.boolean.relations import BooleanRelation
from repro.exceptions import NotSchaeferError
from repro.sat.cnf import clause_is_dual_horn, clause_is_horn

from conftest import boolean_relations


class TestBijunctive:
    def test_k2_edge(self):
        r = BooleanRelation(2, [(0, 1), (1, 0)])
        clauses = bijunctive_defining_formula(r)
        assert clauses_define(clauses, r)
        assert all(len(c) <= 2 for c in clauses)

    def test_not_bijunctive_rejected(self):
        r = BooleanRelation(3, [(1, 0, 0), (0, 1, 0), (0, 0, 1)])
        with pytest.raises(NotSchaeferError):
            bijunctive_defining_formula(r)

    def test_empty_relation(self):
        r = BooleanRelation(2, [])
        clauses = bijunctive_defining_formula(r)
        assert clauses_define(clauses, r)

    def test_full_relation_no_constraints(self):
        r = BooleanRelation(
            1, [(0,), (1,)]
        )
        clauses = bijunctive_defining_formula(r)
        assert clauses_define(clauses, r)

    @given(boolean_relations(max_arity=4, closure="bijunctive"))
    @settings(max_examples=60, deadline=None)
    def test_defines_exactly(self, r):
        clauses = bijunctive_defining_formula(r)
        assert clauses_define(clauses, r)
        assert all(len(c) <= 2 for c in clauses)


class TestHorn:
    def test_implication_relation(self):
        r = BooleanRelation(2, [(0, 0), (0, 1), (1, 1)])
        clauses = horn_defining_formula(r)
        assert clauses_define(clauses, r)
        assert all(clause_is_horn(c) for c in clauses)

    def test_not_horn_rejected(self):
        r = BooleanRelation(2, [(0, 1), (1, 0)])
        with pytest.raises(NotSchaeferError):
            horn_defining_formula(r)

    def test_singleton_relation(self):
        r = BooleanRelation(3, [(1, 0, 1)])
        clauses = horn_defining_formula(r)
        assert clauses_define(clauses, r)

    def test_empty_relation(self):
        r = BooleanRelation(2, [])
        clauses = horn_defining_formula(r)
        assert clauses_define(clauses, r)

    def test_needs_wide_body(self):
        # all tuples except 1110: requires the clause p1&p2&p3 -> p4
        tuples = [
            t
            for t in __import__("itertools").product((0, 1), repeat=4)
            if t != (1, 1, 1, 0)
        ]
        r = BooleanRelation(4, tuples)
        assert r.is_horn
        clauses = horn_defining_formula(r)
        assert clauses_define(clauses, r)

    @given(boolean_relations(max_arity=4, closure="horn"))
    @settings(max_examples=60, deadline=None)
    def test_defines_exactly(self, r):
        clauses = horn_defining_formula(r)
        assert clauses_define(clauses, r)
        assert all(clause_is_horn(c) for c in clauses)


class TestDualHorn:
    def test_simple(self):
        r = BooleanRelation(2, [(0, 0), (0, 1), (1, 1)])
        clauses = dual_horn_defining_formula(r)
        assert clauses_define(clauses, r)
        assert all(clause_is_dual_horn(c) for c in clauses)

    def test_not_dual_horn_rejected(self):
        r = BooleanRelation(2, [(0, 1), (1, 0)])
        with pytest.raises(NotSchaeferError):
            dual_horn_defining_formula(r)

    @given(boolean_relations(max_arity=4, closure="dual_horn"))
    @settings(max_examples=60, deadline=None)
    def test_defines_exactly(self, r):
        clauses = dual_horn_defining_formula(r)
        assert clauses_define(clauses, r)
        assert all(clause_is_dual_horn(c) for c in clauses)


class TestAffine:
    def test_xor_relation(self):
        r = BooleanRelation(2, [(0, 1), (1, 0)])
        equations = affine_defining_formula(r)
        assert equations_define(equations, r)
        # x + y = 1 is the only constraint
        assert LinearEquation(frozenset({0, 1}), 1) in equations

    def test_paper_c4_relation(self):
        # Example 3.8: E' is affine, defined by x^y^z=0 and y^w=1
        r = BooleanRelation(
            4,
            [(0, 0, 0, 1), (0, 1, 1, 0), (1, 0, 1, 1), (1, 1, 0, 0)],
        )
        assert r.is_affine
        equations = affine_defining_formula(r)
        assert equations_define(equations, r)

    def test_not_affine_rejected(self):
        r = BooleanRelation(2, [(0, 0), (0, 1), (1, 1)])
        with pytest.raises(NotSchaeferError):
            affine_defining_formula(r)

    def test_empty_relation_contradictory_system(self):
        r = BooleanRelation(2, [])
        equations = affine_defining_formula(r)
        assert equations_define(equations, r)

    def test_equation_satisfied_by(self):
        eq = LinearEquation(frozenset({0, 2}), 1)
        assert eq.satisfied_by((1, 1, 0))
        assert not eq.satisfied_by((1, 0, 1))

    def test_equation_equality_and_repr(self):
        a = LinearEquation(frozenset({0, 1}), 1)
        b = LinearEquation(frozenset({1, 0}), 1)
        assert a == b and hash(a) == hash(b)
        assert "p0" in repr(a)

    @given(boolean_relations(max_arity=4, closure="affine"))
    @settings(max_examples=60, deadline=None)
    def test_defines_exactly(self, r):
        equations = affine_defining_formula(r)
        assert equations_define(equations, r)

    @given(boolean_relations(max_arity=4, closure="affine", allow_empty=False))
    @settings(max_examples=40, deadline=None)
    def test_basis_size_bound(self, r):
        # Theorem 3.2: the basis has at most min(k+1, |R|) vectors
        equations = affine_defining_formula(r)
        assert len(equations) <= r.arity + 1
