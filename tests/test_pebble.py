"""Tests for existential k-pebble games and strong k-consistency (Section 4)."""

import pytest
from hypothesis import given, settings

from repro.exceptions import VocabularyError
from repro.pebble.game import (
    duplicator_wins,
    kconsistency_closure,
    solve_pebble_game,
    spoiler_wins,
)
from repro.pebble.kconsistency import (
    consistency_tables,
    strong_k_consistent,
)
from repro.structures.graphs import clique, cycle, path, random_graph
from repro.structures.homomorphism import homomorphism_exists
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

from conftest import structure_pairs


class TestGameBasics:
    def test_hom_implies_duplicator_wins(self):
        # C6 -> K2, so the Duplicator wins at every k
        for k in (1, 2, 3):
            assert duplicator_wins(cycle(6), clique(2), k)

    def test_spoiler_wins_on_odd_cycle_with_enough_pebbles(self):
        # non-2-colorability is 4-Datalog expressible; k=3 suffices for
        # the game to detect odd cycles
        assert spoiler_wins(cycle(5), clique(2), 3)

    def test_duplicator_survives_with_too_few_pebbles(self):
        # with a single pebble the Spoiler learns nothing about edges
        assert duplicator_wins(cycle(5), clique(2), 1)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            solve_pebble_game(cycle(3), clique(2), 0)

    def test_vocabulary_mismatch(self):
        other = Structure(Vocabulary.from_arities({"F": 2}))
        with pytest.raises(VocabularyError):
            solve_pebble_game(cycle(3), other, 2)

    def test_empty_target_with_nonempty_source(self):
        empty = Structure(cycle(3).vocabulary)
        assert spoiler_wins(cycle(3), empty, 2)

    def test_empty_source(self):
        empty = Structure(cycle(3).vocabulary)
        assert duplicator_wins(empty, cycle(3), 2)

    def test_winning_from_configuration(self):
        result = solve_pebble_game(cycle(4), clique(2), 2)
        assert result.duplicator_wins
        # configuration mapping adjacent vertices to the two colors is fine
        assert result.winning_from(((0, 0), (1, 1)))
        # mapping adjacent vertices to one color is immediately lost
        assert not result.winning_from(((0, 0), (1, 0)))


class TestGameVsHomomorphism:
    @given(structure_pairs(max_elements=3, max_facts=4))
    @settings(max_examples=40, deadline=None)
    def test_hom_implies_duplicator_win(self, pair):
        a, b = pair
        if homomorphism_exists(a, b):
            for k in (1, 2):
                assert duplicator_wins(a, b, k)

    @given(structure_pairs(max_elements=3, max_facts=4))
    @settings(max_examples=30, deadline=None)
    def test_spoiler_win_refutes_hom(self, pair):
        a, b = pair
        if spoiler_wins(a, b, 2):
            assert not homomorphism_exists(a, b)

    @given(structure_pairs(max_elements=3, max_facts=3))
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_k(self, pair):
        # more pebbles only help the Spoiler
        a, b = pair
        if spoiler_wins(a, b, 2):
            assert spoiler_wins(a, b, 3)


class TestTwoColorabilityDecided:
    def test_k3_decides_two_colorability(self):
        # cCSP(K2) is expressible in k-Datalog for small k, so the game
        # decides it exactly (Theorem 4.8)
        k2 = clique(2)
        for seed in range(12):
            g = random_graph(6, 0.4, seed=seed)
            assert spoiler_wins(g, k2, 3) == (
                not homomorphism_exists(g, k2)
            )


class TestKConsistency:
    def test_tables_and_game_agree(self):
        k2 = clique(2)
        for seed in range(10):
            g = random_graph(5, 0.5, seed=seed)
            for k in (2, 3):
                assert strong_k_consistent(g, k2, k) == duplicator_wins(
                    g, k2, k
                )

    @given(structure_pairs(max_elements=3, max_facts=4))
    @settings(max_examples=30, deadline=None)
    def test_random_agreement(self, pair):
        a, b = pair
        assert strong_k_consistent(a, b, 2) == duplicator_wins(a, b, 2)

    def test_tables_contain_restrictions_of_homs(self):
        a, b = path(3), clique(2)
        tables = consistency_tables(a, b, 2)
        assert tables is not None
        from repro.structures.homomorphism import all_homomorphisms

        for hom in all_homomorphisms(a, b):
            for domain, images in tables.items():
                restricted = tuple(hom[e] for e in domain)
                assert restricted in images

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            consistency_tables(cycle(3), clique(2), 0)

    def test_closure_exposed(self):
        family = kconsistency_closure(cycle(4), clique(2), 2)
        assert frozenset() in family
