"""Tests for the CNF substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CNF, clause_is_dual_horn, clause_is_horn


def cnf_strategy(max_vars=5, max_clauses=8, max_len=3):
    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=1, max_value=max_vars))
        clauses = []
        for _ in range(draw(st.integers(min_value=0, max_value=max_clauses))):
            length = draw(st.integers(min_value=1, max_value=max_len))
            clause = tuple(
                draw(st.integers(min_value=1, max_value=n))
                * draw(st.sampled_from([1, -1]))
                for _ in range(length)
            )
            clauses.append(clause)
        return CNF(n, clauses)

    return build()


class TestClauses:
    def test_horn_recognition(self):
        assert clause_is_horn((-1, -2, 3))
        assert clause_is_horn((-1, -2))
        assert clause_is_horn((3,))
        assert not clause_is_horn((1, 2))
        assert clause_is_horn(())

    def test_dual_horn_recognition(self):
        assert clause_is_dual_horn((1, 2, -3))
        assert clause_is_dual_horn((1, 2))
        assert not clause_is_dual_horn((-1, -2))


class TestCNF:
    def test_literal_zero_rejected(self):
        with pytest.raises(ValueError):
            CNF(2, [(0,)])

    def test_out_of_range_literal_rejected(self):
        with pytest.raises(ValueError):
            CNF(2, [(3,)])
        with pytest.raises(ValueError):
            CNF(2, [(-3,)])

    def test_add_clause_validates(self):
        formula = CNF(2)
        formula.add_clause((1, -2))
        assert len(formula) == 1
        with pytest.raises(ValueError):
            formula.add_clause((5,))

    def test_size_counts_literals(self):
        formula = CNF(3, [(1, -2), (3,), ()])
        assert formula.size == 3

    def test_class_flags(self):
        assert CNF(3, [(-1, -2, 3), (-3,)]).is_horn
        assert not CNF(3, [(1, 2)]).is_horn
        assert CNF(3, [(1, 2, -3)]).is_dual_horn
        assert CNF(2, [(1, -2), (2,)]).is_2cnf
        assert not CNF(3, [(1, 2, 3)]).is_2cnf

    def test_evaluate(self):
        formula = CNF(2, [(1, 2), (-1, -2)])
        assert formula.evaluate({1: True, 2: False})
        assert not formula.evaluate({1: True, 2: True})

    def test_empty_clause_unsatisfiable(self):
        assert not CNF(1, [()]).is_satisfiable_bruteforce()

    def test_empty_formula_satisfiable(self):
        assert CNF(0, []).is_satisfiable_bruteforce()

    def test_all_models_of_xor_like(self):
        formula = CNF(2, [(1, 2), (-1, -2)])
        models = list(formula.all_models())
        assert len(models) == 2

    @given(cnf_strategy())
    @settings(max_examples=50, deadline=None)
    def test_models_satisfy(self, formula):
        for model in formula.all_models():
            assert formula.evaluate(model)
