"""Chaos at the edge: SIGKILL a shard mid-flight under real load.

The termination invariant, extended across the network boundary: when a
shard process is SIGKILLed with requests in flight, **every** request
that entered the edge still terminates — with a parity-correct answer
(the router's crash retry rode out the respawn) or a *typed* 5xx
(:class:`ShardCrashedError` et al. mapped to 503) — never a hang, never
an unhandled exception, never a wrong answer.

And the respawn is *warm*: the replacement process re-opens the dead
shard's store partition (whose per-record flushes survive SIGKILL),
seeds its caches before answering its readiness ping, and then serves
the same fingerprints with ``compile.targets == 0`` on its kernel
counters — the PR 9 observability plane proving the PR 9 persistence
plane, through the PR 10 edge.

Seeds are fixed (17/29/43, the persist-chaos convention): a failure
reproduces by running the same seed.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from _edge_harness import RunningEdge, wait_for
from _workloads import mixed_service_workload
from repro.core import solve
from repro.edge import EdgeClient, EdgeConfig, shard_for
from repro.exceptions import EdgeProtocolError, ReproError
from repro.structures.fingerprint import instance_fingerprint
from repro.structures.graphs import clique, random_graph
from repro.structures.io import structure_from_dict, structure_to_dict

FIXED_SEEDS = (17, 29, 43)
NUM_SHARDS = 2
STORM_TIMEOUT = 300.0


def _corpus(seed: int):
    """The storm mix: the P3 families plus one deliberately slow solve.

    The slow instance (~1s of backtracking, verdict False) guarantees
    its shard has work in flight when the SIGKILL lands; its shard is
    therefore the victim.
    """
    instances = [
        (f"{index}:{label}", source, target)
        for index, (label, source, target) in enumerate(
            mixed_service_workload(seed=seed, variants=2, clique_sizes=(3, 4))
        )
    ]
    instances.append(
        ("slow-k4", random_graph(100, 0.2, seed=seed), clique(4))
    )
    return instances


def _shard_of(source, target) -> int:
    roundtrip = lambda s: structure_from_dict(structure_to_dict(s))  # noqa: E731
    return shard_for(
        instance_fingerprint(roundtrip(source), roundtrip(target)), NUM_SHARDS
    )


def _shard_state(client: EdgeClient, index: int) -> dict:
    return next(
        s for s in client.healthz()["shards"] if s["index"] == index
    )


@pytest.mark.parametrize("seed", FIXED_SEEDS)
def test_sigkill_shard_mid_flight(seed, tmp_path):
    corpus = _corpus(seed)
    expected = {
        label: solve(source, target, plan=True).exists
        for label, source, target in corpus
    }
    config = EdgeConfig(
        num_shards=NUM_SHARDS,
        store_path=str(tmp_path / "store"),
        max_body_bytes=8 * 1024 * 1024,
        retry_budget=1,
    )
    with RunningEdge(config) as edge:
        client = EdgeClient(edge.host, edge.port, timeout=STORM_TIMEOUT)

        # -- Phase 1: warm pass.  Every instance once through the edge:
        # verdict parity, and every compiled artifact lands in the
        # shards' store partitions (flushed per record — SIGKILL-proof).
        for label, source, target in corpus:
            result = client.solve(source, target)
            assert result["verdict"] == expected[label], (seed, label)

        slow_label, slow_source, slow_target = corpus[-1]
        victim = _shard_of(slow_source, slow_target)
        victim_pid = _shard_state(client, victim)["pid"]

        # -- Phase 2: the storm.  Four closed-loop workers replay the
        # corpus concurrently; once the victim shard has the slow solve
        # in flight, SIGKILL it.
        outcomes: list[tuple[str, object]] = []
        outcome_lock = threading.Lock()

        def worker(worker_index: int) -> None:
            with EdgeClient(edge.host, edge.port, timeout=STORM_TIMEOUT) as c:
                jobs = list(corpus)
                if worker_index == 0:
                    # Worker 0 leads with the slow instance so the
                    # victim is mid-solve when the kill lands.
                    jobs = [corpus[-1]] + jobs[:-1]
                for label, source, target in jobs:
                    try:
                        result = c.solve(source, target)
                        outcome = result["verdict"]
                    except ReproError as exc:
                        outcome = exc
                    with outcome_lock:
                        outcomes.append((label, outcome))

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        wait_for(
            lambda: _shard_state(client, victim)["inflight"] > 0,
            timeout=60,
            what="in-flight work on the victim shard",
        )
        os.kill(victim_pid, signal.SIGKILL)
        killed_at = time.monotonic()
        for thread in threads:
            thread.join(timeout=STORM_TIMEOUT)
            assert not thread.is_alive(), "a storm request hung"

        # -- The termination invariant: every request terminated with a
        # parity-correct verdict or a typed (non-protocol) error.
        assert len(outcomes) == 4 * len(corpus)
        typed_failures = 0
        for label, outcome in outcomes:
            if isinstance(outcome, ReproError):
                assert not isinstance(outcome, EdgeProtocolError), (
                    "a shard crash surfaced as a protocol error: "
                    f"{outcome!r}"
                )
                typed_failures += 1
            else:
                assert outcome == expected[label], (seed, label)

        # -- Phase 3: warm respawn.  New pid, bumped generation — and
        # zero target compiles after re-serving the whole corpus,
        # because the replacement seeded its caches from the dead
        # shard's store partition before answering its readiness ping.
        state = wait_for(
            lambda: (
                lambda s: s
                if s["alive"] and s["pid"] != victim_pid
                else None
            )(_shard_state(client, victim)),
            timeout=120,
            what="the victim shard to respawn",
        )
        assert state["generation"] >= 2
        respawn_seconds = time.monotonic() - killed_at

        for label, source, target in corpus:
            result = client.solve(source, target)
            assert result["verdict"] == expected[label], (seed, label)

        import json

        _status, _headers, body = client.request(
            "GET", "/v1/healthz?full=1", None
        )
        full = next(
            s
            for s in json.loads(body)["shards"]
            if s.get("index") == victim
        )
        assert full["alive"] is True
        assert full["kernel"]["compile.targets"] == 0, (
            f"respawned shard recompiled {full['kernel']['compile.targets']}"
            f" target(s) — warm restart failed (seed {seed})"
        )

        client.close()
        assert edge.sentry.messages() == []
        # Soft telemetry for the log: how disruptive was the kill?
        print(
            f"seed={seed} victim={victim} respawn={respawn_seconds:.2f}s "
            f"typed_failures={typed_failures}/{len(outcomes)}"
        )
