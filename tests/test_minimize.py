"""Tests for conjunctive-query minimization (cores of canonical databases)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq.containment import equivalent
from repro.cq.minimize import (
    is_minimal,
    minimize,
    minimize_by_atom_removal,
)
from repro.cq.parser import parse_query
from repro.cq.query import Atom, ConjunctiveQuery


@st.composite
def redundant_queries(draw):
    variables = ["X", "Y", "Z", "W", "V"]
    atoms = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        atoms.append(
            Atom(
                "E",
                (
                    draw(st.sampled_from(variables)),
                    draw(st.sampled_from(variables)),
                ),
            )
        )
    return ConjunctiveQuery((draw(st.sampled_from(variables)),), atoms)


class TestMinimize:
    def test_redundant_branch_removed(self):
        q = parse_query("Q(X) :- E(X, Y), E(X, Z).")
        m = minimize(q)
        assert len(m) == 1
        assert equivalent(m, q)

    def test_already_minimal_untouched(self):
        q = parse_query("Q(X) :- E(X, Y), E(Y, X).")
        assert len(minimize(q)) == 2

    def test_triangle_with_redundant_path(self):
        # a path folded into the triangle is redundant
        q = parse_query(
            "Q :- E(X, Y), E(Y, Z), E(Z, X), E(X, A), E(A, B)."
        )
        m = minimize(q)
        assert len(m) == 3
        assert equivalent(m, q)

    def test_distinguished_variables_survive(self):
        q = parse_query("Q(X, Y) :- E(X, Y), E(X, Z).")
        m = minimize(q)
        assert m.head_variables == ("X", "Y")
        assert equivalent(m, q)

    def test_head_pins_prevent_collapse(self):
        # without head vars this collapses to one atom; with both
        # endpoints distinguished it cannot
        boolean = parse_query("Q :- E(X, Y), E(Z, W).")
        assert len(minimize(boolean)) == 1
        pinned = parse_query("Q(X, Y, Z, W) :- E(X, Y), E(Z, W).")
        assert len(minimize(pinned)) == 2

    def test_empty_body(self):
        q = parse_query("Q(X) :- .")
        assert len(minimize(q)) == 0


class TestAgreementOfBothMinimizers:
    @given(redundant_queries())
    @settings(max_examples=40, deadline=None)
    def test_same_size_and_equivalent(self, q):
        by_core = minimize(q)
        by_removal = minimize_by_atom_removal(q)
        # minimal equivalent CQs are unique up to renaming => same size
        assert len(by_core) == len(by_removal)
        assert equivalent(by_core, q)
        assert equivalent(by_removal, q)

    @given(redundant_queries())
    @settings(max_examples=30, deadline=None)
    def test_idempotent(self, q):
        m = minimize(q)
        assert len(minimize(m)) == len(m)

    @given(redundant_queries())
    @settings(max_examples=30, deadline=None)
    def test_result_is_minimal(self, q):
        assert is_minimal(minimize_by_atom_removal(q))


class TestIsMinimal:
    def test_positive(self):
        assert is_minimal(parse_query("Q(X) :- E(X, Y)."))

    def test_negative(self):
        assert not is_minimal(parse_query("Q(X) :- E(X, Y), E(X, Z)."))
