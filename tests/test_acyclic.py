"""Tests for GYO reduction and Yannakakis evaluation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq.acyclic import (
    gyo_join_tree,
    is_alpha_acyclic,
    yannakakis_holds,
)
from repro.cq.evaluation import holds
from repro.cq.parser import parse_query
from repro.cq.query import Atom, ConjunctiveQuery
from repro.exceptions import VocabularyError
from repro.structures.graphs import random_digraph


class TestGYO:
    def test_chain_is_acyclic(self):
        q = parse_query("Q :- E(X, Y), E(Y, Z), E(Z, W).")
        assert is_alpha_acyclic(q)
        tree = gyo_join_tree(q)
        assert len(tree) == 3
        assert tree[-1][1] is None  # root last

    def test_triangle_is_cyclic(self):
        q = parse_query("Q :- E(X, Y), E(Y, Z), E(Z, X).")
        assert not is_alpha_acyclic(q)
        assert gyo_join_tree(q) is None

    def test_star_is_acyclic(self):
        q = parse_query("Q :- E(C, X), E(C, Y), E(C, Z).")
        assert is_alpha_acyclic(q)

    def test_wide_atom_is_acyclic_despite_high_treewidth(self):
        # alpha-acyclicity vs treewidth: one wide atom is acyclic
        q = parse_query("Q :- T(X, Y, Z, W).")
        assert is_alpha_acyclic(q)
        from repro.cq.width import query_treewidth

        assert query_treewidth(q) == 3

    def test_disconnected_components_acyclic(self):
        q = parse_query("Q :- E(X, Y), F(Z, W).")
        assert is_alpha_acyclic(q)

    def test_empty_body(self):
        q = parse_query("Q :- .")
        assert gyo_join_tree(q) == []

    def test_single_atom(self):
        q = parse_query("Q :- E(X, Y).")
        assert gyo_join_tree(q) == [(0, None)]


class TestYannakakis:
    def test_chain_query_on_digraph(self):
        q = parse_query("Q :- E(X, Y), E(Y, Z).")
        yes = random_digraph(4, 0.9, seed=1)
        assert yannakakis_holds(q, yes) == holds(q, yes)

    def test_unsatisfiable(self):
        q = parse_query("Q :- E(X, Y), F(Y, Z).")
        db = random_digraph(4, 0.5, seed=2)  # F is empty
        assert not yannakakis_holds(q, db)

    def test_empty_body_true(self):
        q = parse_query("Q :- .")
        assert yannakakis_holds(q, random_digraph(2, 0.5, seed=3))

    def test_cyclic_query_rejected(self):
        q = parse_query("Q :- E(X, Y), E(Y, Z), E(Z, X).")
        with pytest.raises(VocabularyError):
            yannakakis_holds(q, random_digraph(3, 0.5, seed=4))

    def test_non_boolean_rejected(self):
        q = parse_query("Q(X) :- E(X, Y).")
        with pytest.raises(VocabularyError):
            yannakakis_holds(q, random_digraph(3, 0.5, seed=5))

    def test_repeated_variable_atom(self):
        q = parse_query("Q :- E(X, X).")
        loop = random_digraph(3, 0.0, seed=6)
        assert not yannakakis_holds(q, loop)
        from repro.structures.graphs import digraph_structure

        with_loop = digraph_structure([0], [(0, 0)])
        assert yannakakis_holds(q, with_loop)

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=50, deadline=None)
    def test_random_acyclic_queries_agree_with_general_evaluator(
        self, seed, length
    ):
        import random

        rng = random.Random(seed)
        variables = ["X", "Y", "Z", "W", "V"]
        atoms = []
        # build a random acyclic (chain/star-ish) pattern
        current = rng.choice(variables)
        for _ in range(length):
            nxt = rng.choice(variables)
            atoms.append(Atom("E", (current, nxt)))
            current = nxt if rng.random() < 0.7 else current
        q = ConjunctiveQuery((), atoms)
        if not is_alpha_acyclic(q):
            return
        db = random_digraph(4, 0.35, seed=seed)
        assert yannakakis_holds(q, db) == holds(q, db)
