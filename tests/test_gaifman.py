"""Tests for Gaifman and incidence graphs (Section 5)."""

import networkx as nx
from hypothesis import given, settings

from repro.structures.gaifman import (
    gaifman_graph,
    incidence_graph,
    primal_edges,
)
from repro.structures.graphs import cycle, graph_structure
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

from conftest import structures

TERNARY = Vocabulary.from_arities({"T": 3})


class TestGaifmanGraph:
    def test_graph_structure_gaifman_is_itself(self):
        c = cycle(4)
        g = gaifman_graph(c)
        assert set(g.nodes) == set(c.universe)
        assert g.number_of_edges() == 4

    def test_wide_tuple_becomes_clique(self):
        # the paper's closing example: a single n-ary tuple has an n-clique
        # as Gaifman graph (treewidth n-1)
        s = Structure(TERNARY, (), {"T": {(0, 1, 2)}})
        g = gaifman_graph(s)
        assert g.number_of_edges() == 3  # triangle

    def test_repeated_elements_no_self_loop(self):
        s = Structure(TERNARY, (), {"T": {(0, 0, 1)}})
        g = gaifman_graph(s)
        assert not any(u == v for u, v in g.edges)
        assert g.has_edge(0, 1)

    def test_isolated_elements_kept_as_nodes(self):
        s = Structure(TERNARY, {9}, {"T": {(0, 1, 2)}})
        assert 9 in gaifman_graph(s).nodes

    @given(structures())
    @settings(max_examples=30, deadline=None)
    def test_primal_edges_match_cooccurrence(self, s):
        edges = primal_edges(s)
        for edge in edges:
            u, v = tuple(edge)
            assert any(
                u in fact and v in fact for _n, fact in s.facts()
            )


class TestIncidenceGraph:
    def test_bipartite_structure(self):
        s = Structure(TERNARY, (), {"T": {(0, 1, 2), (2, 2, 0)}})
        g = incidence_graph(s)
        element_nodes = [n for n in g.nodes if n[0] == "element"]
        tuple_nodes = [n for n in g.nodes if n[0] == "tuple"]
        assert len(element_nodes) == 3
        assert len(tuple_nodes) == 2
        assert nx.is_bipartite(g)

    def test_single_wide_tuple_incidence_is_star(self):
        # ... whose incidence graph is a tree (incidence treewidth 1),
        # illustrating the Gaifman/incidence gap of Section 5.
        s = Structure(
            Vocabulary.from_arities({"T": 5}), (), {"T": {(0, 1, 2, 3, 4)}}
        )
        g = incidence_graph(s)
        assert nx.is_tree(g)

    def test_edges_link_tuples_to_their_elements(self):
        s = Structure(TERNARY, (), {"T": {(0, 1, 1)}})
        g = incidence_graph(s)
        t = ("tuple", "T", (0, 1, 1))
        assert g.has_edge(t, ("element", 0))
        assert g.has_edge(t, ("element", 1))
        assert g.degree(t) == 2  # repeated element counted once

    @given(structures())
    @settings(max_examples=25, deadline=None)
    def test_incidence_node_counts(self, s):
        g = incidence_graph(s)
        elements = [n for n in g.nodes if n[0] == "element"]
        tuples = [n for n in g.nodes if n[0] == "tuple"]
        assert len(elements) == len(s)
        assert len(tuples) == s.num_facts
