"""Fingerprints are stable across interpreter hash seeds.

The persistent store keys every artifact by a fingerprint.  If any of
those fingerprints leaked ``hash()`` (which ``PYTHONHASHSEED``
randomizes per process), a store written by one process generation would
silently never hit in the next — warm restarts would be cold restarts
with extra I/O.  This suite computes every fingerprint family in
subprocesses pinned to *different* hash seeds and asserts byte
equality.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

_SRC = str(Path(__file__).resolve().parent.parent / "src")

_FINGERPRINT_SCRIPT = """
from repro.cq.compiled import query_fingerprint
from repro.cq.query import ConjunctiveQuery
from repro.persist import datalog_key
from repro.structures.fingerprint import (
    canonical_fingerprint,
    instance_fingerprint,
)
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

# Mixed element types on purpose: strings are where hash randomization
# would bite, and frozenset/dict iteration order depends on it.
voc = Vocabulary.from_arities({"E": 2, "P": 1})
a = Structure(
    voc,
    ["x", "y", "z"],
    {"E": [("x", "y"), ("y", "z"), ("z", "x")], "P": [("y",), ("x",)]},
)
b = Structure(
    voc,
    range(4),
    {"E": [(i, j) for i in range(4) for j in range(4) if i != j], "P": [(0,)]},
)
query = ConjunctiveQuery(
    ("X",),
    [("E", ("X", "Y")), ("E", ("Y", "Z")), ("P", ("Z",))],
)

print(canonical_fingerprint(a))
print(canonical_fingerprint(b))
print(instance_fingerprint(a, b))
print(query_fingerprint(query))
print(datalog_key(canonical_fingerprint(b), 3))
"""


def _fingerprints_under_seed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [_SRC, env.get("PYTHONPATH", "")])
    )
    result = subprocess.run(
        [sys.executable, "-c", _FINGERPRINT_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
        check=True,
    )
    return result.stdout


@pytest.mark.parametrize("seed", ["1", "2", "4242"])
def test_fingerprints_identical_across_hash_seeds(seed):
    """Every store key family is byte-identical under any hash seed."""
    baseline = _fingerprints_under_seed("0")
    assert baseline.count("\n") == 5
    assert _fingerprints_under_seed(seed) == baseline


def test_fingerprints_match_this_process(tmp_path):
    """The subprocess keys are the keys this process would use — so a
    store written here is readable by any later interpreter."""
    from repro.cq.compiled import query_fingerprint
    from repro.cq.query import ConjunctiveQuery
    from repro.persist import datalog_key
    from repro.structures.fingerprint import (
        canonical_fingerprint,
        instance_fingerprint,
    )
    from repro.structures.structure import Structure
    from repro.structures.vocabulary import Vocabulary

    voc = Vocabulary.from_arities({"E": 2, "P": 1})
    a = Structure(
        voc,
        ["x", "y", "z"],
        {"E": [("x", "y"), ("y", "z"), ("z", "x")], "P": [("y",), ("x",)]},
    )
    b = Structure(
        voc,
        range(4),
        {
            "E": [(i, j) for i in range(4) for j in range(4) if i != j],
            "P": [(0,)],
        },
    )
    query = ConjunctiveQuery(
        ("X",),
        [("E", ("X", "Y")), ("E", ("Y", "Z")), ("P", ("Z",))],
    )
    expected = "\n".join(
        [
            canonical_fingerprint(a),
            canonical_fingerprint(b),
            instance_fingerprint(a, b),
            query_fingerprint(query),
            datalog_key(canonical_fingerprint(b), 3),
        ]
    )
    assert _fingerprints_under_seed("1").strip() == expected
