"""Shared harness for the edge test wall (protocol, parity, chaos).

``RunningEdge`` hosts a real :class:`repro.edge.EdgeServer` — shard
processes, listening socket and all — on a background-thread event loop,
so blocking test code can poke it over localhost exactly like an
external client would.  An attached log sentry records every
ERROR-or-worse record under the ``repro.edge`` hierarchy; the protocol
suite's core claim ("the server keeps serving and nothing lands
unhandled in the log") is asserted through it.
"""

from __future__ import annotations

import asyncio
import logging
import socket
import threading
import time

from repro.edge import EdgeConfig, EdgeServer

#: Generous: shard processes are full Python interpreters (spawn) that
#: import the kernel before answering their readiness ping.
START_TIMEOUT = 120.0


class LogSentry(logging.Handler):
    """Collects ERROR+ records from the ``repro.edge`` logger tree."""

    def __init__(self) -> None:
        super().__init__(level=logging.ERROR)
        self.records: list[logging.LogRecord] = []

    def emit(self, record: logging.LogRecord) -> None:
        self.records.append(record)

    def messages(self) -> list[str]:
        return [record.getMessage() for record in self.records]


class RunningEdge:
    """A live edge server on a daemon-thread event loop.

    Use as a context manager; ``host``/``port`` are bound after entry.
    ``run(coro)`` executes a coroutine on the server's loop (used to
    call ``server.drain`` from blocking test code); ``sentry`` holds
    any ERROR-level log records the server emitted.
    """

    def __init__(self, config: EdgeConfig | None = None) -> None:
        self.config = config or EdgeConfig()
        self.server: EdgeServer | None = None
        self.sentry = LogSentry()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "RunningEdge":
        logging.getLogger("repro.edge").addHandler(self.sentry)
        self._thread = threading.Thread(
            target=self._serve, name="edge-harness", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(START_TIMEOUT):
            raise TimeoutError("edge server did not start")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def __exit__(self, *_exc_info) -> None:
        try:
            if self.server is not None and not self.server.draining:
                self.run(self.server.stop(), timeout=START_TIMEOUT)
        finally:
            assert self._loop is not None
            self._loop.call_soon_threadsafe(self._loop.stop)
            assert self._thread is not None
            self._thread.join(timeout=30)
            logging.getLogger("repro.edge").removeHandler(self.sentry)

    def _serve(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self.server = loop.run_until_complete(
                EdgeServer(self.config).start()
            )
        except BaseException as exc:  # noqa: BLE001 — surfaced to __enter__
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        loop.run_forever()
        # Drain any callbacks scheduled between stop() and here.
        loop.run_until_complete(asyncio.sleep(0))
        loop.close()

    # -- helpers -----------------------------------------------------------

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        assert self.server is not None
        return self.server.port

    def run(self, coro, *, timeout: float = 60.0):
        """Run a coroutine on the server's loop from test code."""
        assert self._loop is not None
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            timeout
        )

    def raw(self, data: bytes, *, timeout: float = 30.0) -> bytes:
        """One raw TCP exchange: send ``data``, read to EOF or timeout.

        The fuzzing primitive — no HTTP library in the way, so truncated
        and malformed frames reach the server exactly as written.
        """
        with socket.create_connection((self.host, self.port), timeout=timeout) as sock:
            sock.sendall(data)
            sock.shutdown(socket.SHUT_WR)
            chunks = []
            try:
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
            except socket.timeout:
                pass
        return b"".join(chunks)

    def raw_keepalive(
        self, payloads: list[bytes], *, timeout: float = 30.0
    ) -> list[bytes]:
        """Several requests down one keep-alive connection.

        Returns one response-byte blob per request, split on complete
        HTTP responses (content-length framing — ours always has it).
        """
        responses: list[bytes] = []
        with socket.create_connection((self.host, self.port), timeout=timeout) as sock:
            for payload in payloads:
                sock.sendall(payload)
                responses.append(_read_one_response(sock))
        return responses


def _read_one_response(sock: socket.socket) -> bytes:
    """Read exactly one content-length framed HTTP response."""
    buffer = b""
    while b"\r\n\r\n" not in buffer:
        chunk = sock.recv(65536)
        if not chunk:
            return buffer
        buffer += chunk
    head, _, rest = buffer.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    while len(rest) < length:
        chunk = sock.recv(65536)
        if not chunk:
            break
        rest += chunk
    return head + b"\r\n\r\n" + rest[:length]


def wait_for(predicate, *, timeout: float, interval: float = 0.05, what: str = "condition"):
    """Poll ``predicate`` until it returns a truthy value."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise TimeoutError(f"timed out waiting for {what}")
