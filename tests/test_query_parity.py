"""Randomized query-plane parity: the legacy one-shot paths as oracle.

Seeded loops over the query generators of :mod:`repro.csp.generators`
assert that the compiled query plane — memoized :class:`CompiledQuery`
artifacts, the kernel core engine, the batch containment layer — returns
*identical* answers to the legacy rebuild-per-probe paths: same
containment verdicts, same witnesses, same minimized queries (not merely
equivalent ones), same cores (not merely isomorphic ones).  The same
pattern as ``test_kernel_parity.py`` / ``test_decomp_parity.py``, one
level up the stack.
"""

from __future__ import annotations

import random

from repro.cq.compiled import compile_query, query_fingerprint
from repro.cq.containment import (
    containment_matrix,
    containment_witness,
    contains,
    contains_via_evaluation,
    equivalence_classes,
    equivalent,
    plan_containment,
)
from repro.cq.minimize import is_minimal, minimize, minimize_by_atom_removal
from repro.cq.query import ConjunctiveQuery
from repro.cq.saraiya import two_atom_contains
from repro.cq.width import contains_bounded_width
from repro.csp.generators import (
    random_chain_query,
    random_query,
    random_star_query,
    random_structure,
    random_two_atom_query,
)
from repro.kernel import use_engine
from repro.structures.product import core, is_core, retract_onto
from repro.structures.vocabulary import Vocabulary

VOC = Vocabulary.from_arities({"E": 2, "T": 3})
BINARY = Vocabulary.from_arities({"E": 2})
MIXED = Vocabulary.from_arities({"U": 1, "E": 2})

NUM_PAIRS = 120
NUM_STRUCTURES = 120


def _fresh(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """A structurally equal rebuild with no memoized compilation."""
    return ConjunctiveQuery(query.head_variables, query.atoms, query.name)


def _query_pair(seed: int) -> tuple[ConjunctiveQuery, ConjunctiveQuery]:
    """One deterministic random containment-compatible pair per seed."""
    rng = random.Random(seed)
    shape = seed % 4
    if shape == 0:
        width = rng.randint(0, 2)
        return (
            random_query(rng.randint(2, 4), rng.randint(2, 4), VOC,
                         head_width=width, seed=seed),
            random_query(rng.randint(2, 4), rng.randint(2, 4), VOC,
                         head_width=width, seed=seed + 1),
        )
    if shape == 1:
        width = rng.randint(0, 1)
        return (
            random_two_atom_query(2, rng.randint(2, 4), head_width=width,
                                  seed=seed),
            random_two_atom_query(2, rng.randint(2, 4), head_width=width,
                                  seed=seed + 1),
        )
    if shape == 2:
        return (
            random_chain_query(rng.randint(1, 4)),
            random_chain_query(rng.randint(1, 4)),
        )
    return (
        random_star_query(rng.randint(1, 3)),
        random_star_query(rng.randint(1, 3)),
    )


def _structure(seed: int):
    rng = random.Random(seed)
    vocabulary = BINARY if seed % 2 else MIXED
    n = rng.randint(2, 6)
    return random_structure(vocabulary, n, rng.randint(1, 2 * n), seed=seed)


class TestContainmentParity:
    def test_contains_engine_parity(self):
        """Kernel and legacy agree on verdict and exact witness."""
        positive = negative = 0
        for seed in range(NUM_PAIRS):
            q1, q2 = _query_pair(seed)
            kernel = containment_witness(q1, q2)
            legacy = containment_witness(q1, q2, engine="legacy")
            assert kernel == legacy, f"seed {seed}: witnesses differ"
            verdict = kernel is not None
            assert contains(q1, q2) == verdict, f"seed {seed}"
            assert contains(q1, q2, engine="legacy") == verdict, f"seed {seed}"
            assert contains_via_evaluation(q1, q2) == verdict, f"seed {seed}"
            assert (
                contains_via_evaluation(q1, q2, engine="legacy") == verdict
            ), f"seed {seed}"
            if verdict:
                positive += 1
            else:
                negative += 1
        # the stream must exercise both outcomes
        assert positive >= 20 and negative >= 20

    def test_process_default_engine_parity(self):
        """Switching the process default (the REPRO_ENGINE path) agrees
        with the per-call keyword."""
        for seed in range(0, NUM_PAIRS, 5):
            q1, q2 = _query_pair(seed)
            with use_engine("legacy"):
                legacy = contains(_fresh(q1), _fresh(q2))
            with use_engine("kernel"):
                kernel = contains(_fresh(q1), _fresh(q2))
            assert kernel == legacy, f"seed {seed}"

    def test_compiled_vs_uncompiled_entry_points(self):
        """A memoized CompiledQuery answers like a fresh rebuild."""
        for seed in range(0, NUM_PAIRS, 3):
            q1, q2 = _query_pair(seed)
            warm = contains(q1, q2)
            # same objects again: served off the memoized artifacts
            assert contains(q1, q2) == warm
            # structurally equal rebuilds with cold memos
            assert contains(_fresh(q1), _fresh(q2)) == warm
            assert q1._compiled is not None  # the memo actually exists
            assert (
                query_fingerprint(q1)
                == compile_query(_fresh(q1)).fingerprint
            )

    def test_equivalent_and_planner_routes_parity(self):
        for seed in range(0, NUM_PAIRS, 3):
            q1, q2 = _query_pair(seed)
            expected = contains(q1, q2)
            assert equivalent(q1, q2) == equivalent(q1, q2, engine="legacy")
            assert contains(q1, q2, plan=True) == expected, f"seed {seed}"
            assert contains_bounded_width(q1, q2) == expected, f"seed {seed}"
            assert (
                contains_bounded_width(q1, q2, engine="legacy") == expected
            ), f"seed {seed}"
            if q1.is_two_atom:
                assert two_atom_contains(q1, q2) == expected, f"seed {seed}"
            plan = plan_containment(q1, q2)
            assert plan.route in ("saraiya", "dp", "search")


class TestMinimizationParity:
    def test_minimize_engine_parity(self):
        """Identical minimized queries — same head, same atoms — on both
        engines, and the greedy remover lands on the same atom count."""
        for seed in range(NUM_PAIRS):
            query, _ = _query_pair(seed)
            kernel = minimize(query)
            legacy = minimize(query, engine="legacy")
            assert kernel == legacy, f"seed {seed}: minimized queries differ"
            removal = minimize_by_atom_removal(query)
            removal_legacy = minimize_by_atom_removal(query, engine="legacy")
            assert removal == removal_legacy, f"seed {seed}"
            assert len(kernel.atoms) == len(removal.atoms), f"seed {seed}"
            assert is_minimal(kernel) and is_minimal(
                kernel, engine="legacy"
            ), f"seed {seed}"

    def test_minimize_memo_matches_cold_path(self):
        for seed in range(0, NUM_PAIRS, 4):
            query, _ = _query_pair(seed)
            warm = minimize(query)
            assert minimize(query) is warm  # memoized on the artifact
            assert minimize(_fresh(query)) == warm


class TestCoreParity:
    def test_core_engine_parity(self):
        """The kernel's masked endomorphism search returns the *same*
        core as the legacy substructure loop — equality, not just
        isomorphism — on every seeded structure."""
        shrunk = unchanged = 0
        for seed in range(NUM_STRUCTURES):
            a = _structure(seed)
            kernel = core(a)
            legacy = core(a, engine="legacy")
            assert kernel == legacy, f"seed {seed}: cores differ"
            assert is_core(a) == is_core(a, engine="legacy"), f"seed {seed}"
            if len(kernel) < len(a):
                shrunk += 1
            else:
                unchanged += 1
        assert shrunk >= 10 and unchanged >= 10

    def test_retraction_engine_parity(self):
        for seed in range(0, NUM_STRUCTURES, 2):
            a = _structure(seed)
            rng = random.Random(seed * 17 + 3)
            subset = {e for e in a.universe if rng.random() < 0.6}
            kernel = retract_onto(a, subset)
            legacy = retract_onto(a, subset, engine="legacy")
            assert kernel == legacy, f"seed {seed}: retractions differ"


class TestBatchParity:
    def _batch(self, seed: int, size: int) -> list[ConjunctiveQuery]:
        rng = random.Random(seed)
        width = rng.randint(0, 1)
        return [
            random_query(rng.randint(2, 3), rng.randint(2, 4), VOC,
                         head_width=width, seed=seed * 100 + i)
            for i in range(size)
        ]

    def test_matrix_matches_legacy_pairwise_loop(self):
        for seed in range(8):
            queries = self._batch(seed, 6)
            # duplicates exercise the fingerprint dedup path
            queries.append(_fresh(queries[0]))
            kernel = containment_matrix(queries)
            legacy = containment_matrix(queries, engine="legacy")
            assert kernel == legacy, f"seed {seed}: matrices differ"
            unplanned = containment_matrix(
                [_fresh(q) for q in queries], plan=False
            )
            assert unplanned == legacy, f"seed {seed}: plan=False differs"

    def test_equivalence_classes_engine_parity(self):
        for seed in range(8):
            queries = self._batch(seed, 5)
            queries.append(_fresh(queries[1]))
            kernel = equivalence_classes(queries)
            legacy = equivalence_classes(queries, engine="legacy")
            assert kernel == legacy, f"seed {seed}: classes differ"
            # a duplicated query must share its original's class
            last = len(queries) - 1
            for members in kernel:
                if 1 in members:
                    assert last in members
