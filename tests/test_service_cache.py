"""Thread-safety of StructureCache and the service's sharded cache."""

from __future__ import annotations

import threading

from repro.boolean.schaefer import classify_structure
from repro.core.pipeline import CacheTally, SolverPipeline, StructureCache
from repro.csp.generators import random_schaefer_target, random_structure
from repro.service import ShardedStructureCache
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

BINARY = Vocabulary.from_arities({"R": 2})


def boolean_targets(count: int) -> list[Structure]:
    return [
        random_schaefer_target(BINARY, 3, "horn", seed=seed)
        for seed in range(count)
    ]


def sources(count: int) -> list[Structure]:
    return [
        random_structure(BINARY, 5 + seed % 4, 8, seed=seed)
        for seed in range(count)
    ]


class TestStructureCacheThreadSafety:
    def hammer(self, cache, targets, srcs, rounds: int, errors: list) -> None:
        try:
            for i in range(rounds):
                target = targets[i % len(targets)]
                assert cache.classification(target) == classify_structure(
                    target
                )
                source = srcs[(i * 7) % len(srcs)]
                cache.decomposition(source)
                compiled = cache.compiled_target(target)
                assert compiled.structure == target
        except Exception as exc:  # pragma: no cover - only on failure
            errors.append(exc)

    def run_threads(self, cache, *, threads: int = 8, rounds: int = 200):
        targets = boolean_targets(6)
        srcs = sources(6)
        errors: list = []
        workers = [
            threading.Thread(
                target=self.hammer, args=(cache, targets, srcs, rounds, errors)
            )
            for _ in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert not errors
        return threads * rounds

    def test_concurrent_hammering_stays_consistent(self):
        cache = StructureCache()
        rounds = self.run_threads(cache)
        stats = cache.stats
        # Every lookup is either a hit or a miss, none lost to races
        # (three lookups per hammer round).
        assert stats.hits + stats.misses == 3 * rounds

    def test_concurrent_eviction_churn(self):
        # A tiny cache forces constant LRU eviction under contention.
        cache = StructureCache(maxsize=2)
        self.run_threads(cache, threads=6, rounds=150)
        assert len(cache) <= 3 * 2

    def test_tally_counts_only_own_traffic(self):
        cache = StructureCache()
        target = boolean_targets(1)[0]
        warm = CacheTally()
        cache.classification(target, tally=warm)
        assert (warm.hits, warm.misses) == (0, 1)
        mine = CacheTally()
        cache.classification(target, tally=mine)
        assert (mine.hits, mine.misses) == (1, 0)
        # The other tally was not touched by my lookup.
        assert (warm.hits, warm.misses) == (0, 1)


class TestShardedStructureCache:
    def test_shard_routing_is_deterministic(self):
        cache = ShardedStructureCache(4)
        for target in boolean_targets(10):
            assert cache.shard_for(target) is cache.shard_for(target)

    def test_same_object_returned_across_lookups(self):
        cache = ShardedStructureCache(4)
        target = boolean_targets(1)[0]
        rebuilt = Structure(
            target.vocabulary, target.universe,
            {"R": target.relation("R")},
        )
        assert cache.compiled_target(target) is cache.compiled_target(rebuilt)

    def test_aggregate_stats_len_and_clear(self):
        from repro.structures.fingerprint import canonical_fingerprint

        cache = ShardedStructureCache(4)
        targets = boolean_targets(8)
        # Seeded generation may repeat a target after closure; the cache
        # keys (and therefore the counters) see distinct structures only.
        unique = len({canonical_fingerprint(t) for t in targets})
        for target in targets:
            cache.classification(target)
        for target in targets:
            cache.classification(target)
        stats = cache.stats
        assert stats.misses == unique
        assert stats.hits == 2 * len(targets) - unique
        assert len(cache) == unique
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 0

    def test_concurrent_hammering(self):
        cache = ShardedStructureCache(4)
        TestStructureCacheThreadSafety().run_threads(cache, threads=6)

    def test_pipeline_accepts_sharded_cache(self):
        cache = ShardedStructureCache(2)
        pipeline = SolverPipeline(cache=cache)
        source = random_structure(BINARY, 6, 10, seed=1)
        target = random_schaefer_target(BINARY, 3, "horn", seed=2)
        first = pipeline.solve(source, target)
        second = pipeline.solve(source, target)
        assert first.exists == second.exists
        # The second solve's analyses all hit the sharded cache.
        assert second.stats.cache_misses == 0
        assert second.stats.cache_hits >= 1
