"""Unit tests for the resilience primitives.

Covers the building blocks the chaos suite (``tests/test_chaos.py``)
exercises end to end: the circuit-breaker state machine, the failure
classifier, deadlines and cooperative cancellation tokens, the seeded
fault-injection plan, and the supervised process pool's crash-respawn
cycle.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro import faultinject
from repro.exceptions import (
    FaultInjectedError,
    ResourceBudgetError,
    SolveTimeoutError,
    WorkerCrashedError,
)
from repro.core.cancellation import (
    CancellationToken,
    Deadline,
    cancel_scope,
    checkpoint,
    combine_deadlines,
    current_token,
)
from repro.faultinject import FaultPlan
from repro.service.resilience import (
    BreakerState,
    CircuitBreaker,
    FailureKind,
    classify,
)
from repro.service.supervision import SupervisedProcessPool
from repro.service.workers import worker_pid


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "test", threshold=3, cooldown=1.0, clock=clock, **kwargs
        )
        return breaker, clock

    def test_stays_closed_below_threshold(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_success_resets_the_failure_count(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_opens_at_threshold_and_blocks(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        clock.advance(0.5)
        assert not breaker.allow()  # still cooling

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()  # the probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow()  # probe slot already claimed

    def test_probe_success_closes(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.5)
        assert not breaker.allow()  # the cooldown restarted at reopen
        clock.advance(0.5)
        assert breaker.allow()

    def test_transitions_are_counted_and_reported(self):
        seen: list[tuple[str, BreakerState]] = []
        breaker, clock = self.make(
            on_transition=lambda name, state: seen.append((name, state))
        )
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        breaker.allow()
        breaker.record_success()
        assert seen == [
            ("test", BreakerState.OPEN),
            ("test", BreakerState.HALF_OPEN),
            ("test", BreakerState.CLOSED),
        ]
        assert breaker.snapshot()["transitions"] == {
            "open": 1,
            "half_open": 1,
            "closed": 1,
        }


class TestClassify:
    @pytest.mark.parametrize(
        ("exc", "kind", "breaker"),
        [
            (WorkerCrashedError("x"), FailureKind.TRANSIENT, "process"),
            (FaultInjectedError("x"), FailureKind.TRANSIENT, "kernel"),
            (ResourceBudgetError("x"), FailureKind.DEGRADE_DATALOG, "datalog"),
            (SolveTimeoutError("x"), FailureKind.TIMEOUT, None),
            (ValueError("x"), FailureKind.PERMANENT, None),
        ],
    )
    def test_mapping(self, exc, kind, breaker):
        assert classify(exc) == (kind, breaker)


class TestDeadline:
    def test_after_and_remaining(self):
        deadline = Deadline.after(10.0)
        assert 9.0 < deadline.remaining() <= 10.0
        assert not deadline.expired()
        assert Deadline.after(-0.001).expired()

    def test_extend_to_later_wins(self):
        deadline = Deadline.after(1.0)
        deadline.extend_to(Deadline.after(10.0))
        assert deadline.remaining() > 5.0
        before = deadline.expires_at
        deadline.extend_to(Deadline.after(0.5))  # earlier: no-op
        deadline.extend_to(None)  # None: no-op
        assert deadline.expires_at == before

    def test_combine_loosest_wins(self):
        short, long = Deadline.after(1.0), Deadline.after(10.0)
        assert combine_deadlines(short, long) is long
        assert combine_deadlines(long, short) is long
        assert combine_deadlines(None, short) is None
        assert combine_deadlines(short, None) is None
        assert combine_deadlines(None, None) is None


class TestCancellationToken:
    def test_unbounded_token_never_raises(self):
        token = CancellationToken()
        token.check()
        assert not token.expired()

    def test_cancel_makes_check_raise(self):
        token = CancellationToken()
        token.cancel()
        assert token.expired()
        with pytest.raises(SolveTimeoutError):
            token.check()

    def test_expired_deadline_makes_check_raise(self):
        token = CancellationToken(Deadline.after(-0.001))
        with pytest.raises(SolveTimeoutError):
            token.check()

    def test_extension_rescues_a_running_token(self):
        # The coalescing rule in miniature: a more patient waiter
        # attaches, the shared deadline moves out, and the running
        # computation's next check passes instead of raising.
        token = CancellationToken(Deadline.after(-0.001))
        token.deadline.extend_to(Deadline.after(10.0))
        token.check()

    def test_scope_installs_and_restores(self):
        assert current_token() is None
        outer, inner = CancellationToken(), CancellationToken()
        with cancel_scope(outer):
            assert current_token() is outer
            with cancel_scope(inner):
                assert current_token() is inner
            assert current_token() is outer
        assert current_token() is None

    def test_checkpoint_checks_the_ambient_token(self):
        checkpoint()  # no scope: no-op
        token = CancellationToken()
        token.cancel()
        with cancel_scope(token):
            with pytest.raises(SolveTimeoutError):
                checkpoint()


class TestFaultPlan:
    def test_per_point_streams_ignore_interleaving(self):
        # The n-th draw of a point depends only on (seed, point, n) —
        # hammering another point in between must not change it.
        plain = FaultPlan(7, {"a": 0.5, "b": 0.5})
        reference = [plain.fires("a") for _ in range(50)]
        noisy = FaultPlan(7, {"a": 0.5, "b": 0.5})
        interleaved = []
        for _ in range(50):
            noisy.fires("b")
            interleaved.append(noisy.fires("a"))
            noisy.fires("b")
        assert interleaved == reference

    def test_different_seeds_differ(self):
        draws = lambda seed: [  # noqa: E731
            FaultPlan(seed, {"a": 0.5}).fires("a") for _ in range(64)
        ]
        assert draws(1) != draws(2)

    def test_spec_round_trip_preserves_decisions(self):
        plan = FaultPlan(3, {"a": 0.4}, delay_ms=(2.0, 9.0))
        clone = FaultPlan.from_spec(plan.spec())
        assert clone.seed == plan.seed
        assert clone.points == plan.points
        assert clone.delay_ms == plan.delay_ms
        assert [plan.fires("a") for _ in range(40)] == [
            clone.fires("a") for _ in range(40)
        ]

    def test_counters_and_missing_points(self):
        plan = FaultPlan(0, {"always": 1.0, "never": 0.0})
        assert plan.fires("always") and not plan.fires("never")
        assert not plan.fires("unknown")
        assert plan.hits == {"always": 1}  # zero-probability: no draw
        assert plan.fired == {"always": 1}

    def test_delay_stays_in_bounds(self):
        plan = FaultPlan(0, {"d": 1.0}, delay_ms=(2.0, 9.0))
        for _ in range(20):
            assert 0.002 <= plan.delay("d") <= 0.009
        assert FaultPlan(0, {}).delay("d") == 0.0

    def test_install_uninstall_and_env_round_trip(self):
        assert faultinject.current() is None
        assert not faultinject.fires("x")
        assert faultinject.delay_seconds("x") == 0.0
        faultinject.raise_fault("x")  # disarmed: no-op
        plan = FaultPlan(1, {"x": 1.0})
        try:
            faultinject.install(plan, env=True)
            assert faultinject.current() is plan
            assert os.environ[faultinject.ENV_VAR] == plan.spec()
            with pytest.raises(FaultInjectedError):
                faultinject.raise_fault("x")
        finally:
            faultinject.uninstall()
        assert faultinject.current() is None
        assert faultinject.ENV_VAR not in os.environ

    def test_install_from_env(self):
        plan = FaultPlan(9, {"y": 1.0})
        try:
            os.environ[faultinject.ENV_VAR] = plan.spec()
            faultinject.install_from_env()
            installed = faultinject.current()
            assert installed is not None and installed.seed == 9
            assert installed.fires("y")
        finally:
            faultinject.uninstall()


class TestSupervisedProcessPool:
    def test_crash_respawn_cycle(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            pool = SupervisedProcessPool(
                1, 64, restart_backoff=0.01, jitter_seed=0
            )
            assert await pool.start(loop)
            first_generation = pool.generation
            assert await pool.run(loop, worker_pid) > 0
            # An abrupt worker death (os._exit, like a segfault) breaks
            # the whole executor: the supervisor must type the error...
            with pytest.raises(WorkerCrashedError):
                await pool.run(loop, os._exit, faultinject.KILL_EXIT_STATUS)
            # ...and the next call respawns a fresh generation that works.
            assert await pool.run(loop, worker_pid) > 0
            assert pool.generation == first_generation + 1
            assert pool.restarts == 1
            assert pool.available
            await pool.shutdown()
            assert not pool.available

        asyncio.run(scenario())
