"""Tests for the formula-building uniform solver (Theorem 3.3)."""

import pytest
from hypothesis import given, settings

from repro.boolean.schaefer import SchaeferClass
from repro.boolean.uniform import (
    build_instance_formula,
    pick_class,
    solve_schaefer_csp,
)
from repro.exceptions import NotSchaeferError, VocabularyError
from repro.sat.affine import LinearSystemGF2
from repro.sat.cnf import CNF
from repro.structures.homomorphism import (
    homomorphism_exists,
    is_homomorphism,
)
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

from conftest import boolean_structures, structures

BINARY = Vocabulary.from_arities({"R": 2})


class TestPickClass:
    def test_trivial_wins(self):
        classes = SchaeferClass.ZERO_VALID | SchaeferClass.HORN
        assert pick_class(classes) is SchaeferClass.ZERO_VALID

    def test_one_valid_second(self):
        classes = SchaeferClass.ONE_VALID | SchaeferClass.AFFINE
        assert pick_class(classes) is SchaeferClass.ONE_VALID

    def test_preference_order(self):
        classes = SchaeferClass.BIJUNCTIVE | SchaeferClass.AFFINE
        assert pick_class(classes) is SchaeferClass.BIJUNCTIVE

    def test_none_rejected(self):
        with pytest.raises(NotSchaeferError):
            pick_class(SchaeferClass.NONE)


class TestBuildFormula:
    def test_bijunctive_formula_shape(self):
        target = Structure(BINARY, {0, 1}, {"R": {(0, 1), (1, 0)}})
        source = Structure(BINARY, range(3), {"R": {(0, 1), (1, 2)}})
        formula, var_of = build_instance_formula(
            source, target, SchaeferClass.BIJUNCTIVE
        )
        assert isinstance(formula, CNF)
        assert formula.num_vars == 3
        assert len(var_of) == 3
        assert formula.is_2cnf

    def test_horn_formula_is_horn(self):
        target = Structure(BINARY, {0, 1}, {"R": {(1, 1), (0, 0), (0, 1)}})
        source = Structure(BINARY, range(3), {"R": {(0, 1), (1, 2)}})
        formula, _ = build_instance_formula(
            source, target, SchaeferClass.HORN
        )
        assert isinstance(formula, CNF) and formula.is_horn

    def test_affine_formula_is_system(self):
        target = Structure(BINARY, {0, 1}, {"R": {(0, 1), (1, 0)}})
        source = Structure(BINARY, range(2), {"R": {(0, 1)}})
        system, _ = build_instance_formula(
            source, target, SchaeferClass.AFFINE
        )
        assert isinstance(system, LinearSystemGF2)

    def test_trivial_class_rejected(self):
        target = Structure(BINARY, {0, 1}, {"R": {(0, 0)}})
        source = Structure(BINARY, range(2), {"R": {(0, 1)}})
        with pytest.raises(NotSchaeferError):
            build_instance_formula(source, target, SchaeferClass.ZERO_VALID)


class TestSolve:
    def test_zero_valid_shortcut(self):
        target = Structure(BINARY, {0, 1}, {"R": {(0, 0), (1, 1)}})
        source = Structure(BINARY, range(5), {"R": {(0, 1), (3, 4)}})
        hom = solve_schaefer_csp(source, target)
        assert hom == {e: 0 for e in range(5)}

    def test_one_valid_shortcut(self):
        target = Structure(BINARY, {0, 1}, {"R": {(1, 1)}})
        source = Structure(BINARY, range(3), {"R": {(0, 1)}})
        hom = solve_schaefer_csp(source, target)
        assert hom == {e: 1 for e in range(3)}

    def test_vocabulary_mismatch(self):
        other = Structure(Vocabulary.from_arities({"S": 2}), {0, 1})
        source = Structure(BINARY, range(2))
        with pytest.raises(VocabularyError):
            solve_schaefer_csp(source, other)

    def test_non_schaefer_rejected(self):
        vocabulary = Vocabulary.from_arities({"R": 3})
        target = Structure(
            vocabulary, {0, 1}, {"R": {(1, 0, 0), (0, 1, 0), (0, 0, 1)}}
        )
        source = Structure(vocabulary, range(2), {"R": {(0, 1, 1)}})
        with pytest.raises(NotSchaeferError):
            solve_schaefer_csp(source, target)

    @given(structures(BINARY, max_elements=4, max_facts=5),
           boolean_structures(closure="horn", vocabulary=BINARY))
    @settings(max_examples=50, deadline=None)
    def test_horn_against_backtracking(self, source, target):
        hom = solve_schaefer_csp(source, target)
        assert (hom is not None) == homomorphism_exists(source, target)
        if hom is not None:
            assert is_homomorphism(hom, source, target)

    @given(structures(BINARY, max_elements=4, max_facts=5),
           boolean_structures(closure="bijunctive", vocabulary=BINARY))
    @settings(max_examples=50, deadline=None)
    def test_bijunctive_against_backtracking(self, source, target):
        hom = solve_schaefer_csp(source, target)
        assert (hom is not None) == homomorphism_exists(source, target)
        if hom is not None:
            assert is_homomorphism(hom, source, target)

    @given(structures(BINARY, max_elements=4, max_facts=5),
           boolean_structures(closure="affine", vocabulary=BINARY))
    @settings(max_examples=50, deadline=None)
    def test_affine_against_backtracking(self, source, target):
        hom = solve_schaefer_csp(source, target)
        assert (hom is not None) == homomorphism_exists(source, target)
        if hom is not None:
            assert is_homomorphism(hom, source, target)

    @given(structures(BINARY, max_elements=4, max_facts=5),
           boolean_structures(closure="dual_horn", vocabulary=BINARY))
    @settings(max_examples=50, deadline=None)
    def test_dual_horn_against_backtracking(self, source, target):
        hom = solve_schaefer_csp(source, target)
        assert (hom is not None) == homomorphism_exists(source, target)
        if hom is not None:
            assert is_homomorphism(hom, source, target)


class TestAgreementWithDirectSolvers:
    @given(structures(BINARY, max_elements=4, max_facts=4),
           boolean_structures(closure="horn", vocabulary=BINARY))
    @settings(max_examples=40, deadline=None)
    def test_horn_routes_agree(self, source, target):
        from repro.boolean.direct import solve_horn_csp

        via_formula = solve_schaefer_csp(source, target)
        via_direct = solve_horn_csp(source, target)
        assert (via_formula is None) == (via_direct is None)

    @given(structures(BINARY, max_elements=4, max_facts=4),
           boolean_structures(closure="bijunctive", vocabulary=BINARY))
    @settings(max_examples=40, deadline=None)
    def test_bijunctive_routes_agree(self, source, target):
        from repro.boolean.direct import solve_bijunctive_csp
        from repro.boolean.schaefer import classify_structure

        # pick_class may choose horn for targets in several classes; the
        # existence answers must nevertheless coincide.
        via_formula = solve_schaefer_csp(source, target)
        via_direct = solve_bijunctive_csp(source, target)
        assert (via_formula is None) == (via_direct is None)
