"""Tests for nice tree decompositions and the per-kind DP."""

import pytest
from hypothesis import given, settings

from repro.exceptions import DecompositionError
from repro.structures.graphs import clique, cycle, path
from repro.structures.homomorphism import homomorphism_exists
from repro.treewidth.decomposition import TreeDecomposition
from repro.treewidth.heuristics import decompose
from repro.treewidth.nice import (
    NiceDecomposition,
    NiceNode,
    make_nice,
    solve_by_nice_dp,
)

from conftest import structure_pairs


class TestMakeNice:
    def test_width_preserved(self):
        for structure in (path(6), cycle(6), clique(4)):
            decomposition = decompose(structure)
            nice = make_nice(decomposition, structure)
            assert nice.width == decomposition.width

    def test_still_a_valid_decomposition(self):
        structure = cycle(7)
        nice = make_nice(decompose(structure), structure)
        nice.to_tree_decomposition().validate(structure)

    def test_node_kinds_wellformed(self):
        nice = make_nice(decompose(cycle(5)), cycle(5))
        kinds = {node.kind for node in nice.nodes}
        assert "leaf" in kinds and "introduce" in kinds
        # every non-root node is someone's child exactly once
        seen = [c for node in nice.nodes for c in node.children]
        assert len(seen) == len(set(seen)) == len(nice) - 1

    def test_join_nodes_appear_for_branching_trees(self):
        # a star has a branching decomposition after normalization
        from repro.structures.graphs import graph_structure

        star = graph_structure(
            range(5), [(0, i) for i in range(1, 5)]
        )
        decomposition = decompose(star)
        nice = make_nice(decomposition, star)
        nice.to_tree_decomposition().validate(star)

    def test_root_is_node_zero(self):
        nice = make_nice(decompose(path(5)), path(5))
        children = {c for node in nice.nodes for c in node.children}
        assert 0 not in children


class TestNiceValidation:
    def test_bad_introduce_rejected(self):
        with pytest.raises(DecompositionError):
            NiceDecomposition(
                [
                    NiceNode("introduce", frozenset({1}), (1,), 2),
                    NiceNode("leaf", frozenset(), ()),
                ]
            )

    def test_bad_forget_rejected(self):
        with pytest.raises(DecompositionError):
            NiceDecomposition(
                [
                    NiceNode("forget", frozenset(), (1,), 5),
                    NiceNode("leaf", frozenset(), ()),
                ]
            )

    def test_bad_join_rejected(self):
        with pytest.raises(DecompositionError):
            NiceDecomposition(
                [
                    NiceNode("join", frozenset({1}), (1, 2)),
                    NiceNode("leaf", frozenset(), ()),
                    NiceNode("leaf", frozenset(), ()),
                ]
            )

    def test_nonempty_leaf_rejected(self):
        with pytest.raises(DecompositionError):
            NiceDecomposition([NiceNode("leaf", frozenset({1}), ())])

    def test_empty_decomposition_rejected(self):
        with pytest.raises(DecompositionError):
            NiceDecomposition([])


class TestNiceDP:
    def test_coloring_decisions(self):
        assert solve_by_nice_dp(cycle(6), clique(2))
        assert not solve_by_nice_dp(cycle(5), clique(2))
        assert solve_by_nice_dp(cycle(5), clique(3))

    def test_explicit_decomposition(self):
        decomposition = TreeDecomposition(
            [{0, 1}, {1, 2}, {2, 3}], [(0, 1), (1, 2)]
        )
        assert solve_by_nice_dp(path(4), clique(2), decomposition)

    @given(structure_pairs(max_elements=4, max_facts=5))
    @settings(max_examples=40, deadline=None)
    def test_against_backtracking(self, pair):
        a, b = pair
        assert solve_by_nice_dp(a, b) == homomorphism_exists(a, b)

    @given(structure_pairs(max_elements=4, max_facts=4))
    @settings(max_examples=25, deadline=None)
    def test_against_table_dp(self, pair):
        from repro.treewidth.dp import homomorphism_exists_by_treewidth

        a, b = pair
        assert solve_by_nice_dp(a, b) == (
            homomorphism_exists_by_treewidth(a, b)
        )
