"""Tests for the dual-graph binary encoding (Lemma 5.5)."""

import pytest
from hypothesis import given, settings

from repro.exceptions import VocabularyError
from repro.structures.binary_encoding import (
    binary_encoding,
    binary_vocabulary,
    coincidence_symbol,
)
from repro.structures.graphs import clique, cycle
from repro.structures.homomorphism import homomorphism_exists
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary

from conftest import structure_pairs

TERNARY = Vocabulary.from_arities({"T": 3})


class TestVocabulary:
    def test_symbol_naming(self):
        symbol = coincidence_symbol("P", 0, "Q", 2)
        assert symbol.arity == 2
        assert "P.0" in symbol.name and "Q.2" in symbol.name

    def test_binary_vocabulary_size(self):
        # one symbol per ordered pair of positions: (sum of arities)^2
        vocabulary = Vocabulary.from_arities({"P": 2, "Q": 1})
        assert len(binary_vocabulary(vocabulary)) == (2 + 1) ** 2

    def test_depends_only_on_source_vocabulary(self):
        a = cycle(4)
        b = clique(2)
        assert (
            binary_encoding(a).vocabulary == binary_encoding(b).vocabulary
        )


class TestEncodingShape:
    def test_domain_is_tuple_set(self):
        enc = binary_encoding(cycle(3))
        assert len(enc) == cycle(3).num_facts

    def test_reflexive_pairs_present(self):
        enc = binary_encoding(cycle(3))
        name = coincidence_symbol("E", 0, "E", 0).name
        rel = enc.relation(name)
        for node in enc.universe:
            assert (node, node) in rel

    def test_nullary_facts_rejected(self):
        s = Structure(
            Vocabulary.from_arities({"S": 0}), (), {"S": {()}}
        )
        with pytest.raises(VocabularyError):
            binary_encoding(s)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(VocabularyError):
            binary_encoding(cycle(3), scheme="bogus")

    def test_chain_is_subset_of_full(self):
        s = Structure(TERNARY, (), {"T": {(0, 1, 2), (1, 2, 0), (2, 0, 1)}})
        full = binary_encoding(s, "full")
        chain = binary_encoding(s, "chain")
        for symbol, rel in chain.relations():
            assert rel <= full.relation(symbol.name)
        assert chain.num_facts < full.num_facts


class TestLemma55:
    def test_two_coloring_preserved(self):
        for n in (3, 4, 5, 6):
            a, b = cycle(n), clique(2)
            assert homomorphism_exists(a, b) == homomorphism_exists(
                binary_encoding(a), binary_encoding(b)
            )

    def test_chain_source_preserved(self):
        for n in (3, 4, 5, 6):
            a, b = cycle(n), clique(2)
            assert homomorphism_exists(a, b) == homomorphism_exists(
                binary_encoding(a, "chain"), binary_encoding(b, "full")
            )

    @given(structure_pairs(max_elements=3, max_facts=4))
    @settings(max_examples=40, deadline=None)
    def test_equivalence_random(self, pair):
        a, b = pair
        direct = homomorphism_exists(a, b)
        encoded = homomorphism_exists(
            binary_encoding(a), binary_encoding(b)
        )
        # Lemma 5.5 concerns structures whose elements occur in tuples; the
        # encoding drops isolated elements, which only matters when B is
        # empty of facts but A is not -- excluded by the direct check below.
        if direct:
            assert encoded
        else:
            # the converse holds whenever B has a tuple in every relation
            # that A uses, or A itself has no facts
            if a.num_facts and all(
                b.relation(symbol.name)
                for symbol, rel in a.relations()
                if rel
            ):
                assert not encoded or direct

    @given(structure_pairs(max_elements=3, max_facts=3))
    @settings(max_examples=30, deadline=None)
    def test_equivalence_random_exact_when_b_nonempty(self, pair):
        a, b = pair
        if not b.num_facts:
            return
        # ensure every relation A uses is non-empty in B; otherwise no hom
        usable = all(
            b.relation(symbol.name)
            for symbol, rel in a.relations()
            if rel
        )
        if not usable:
            return
        assert homomorphism_exists(a, b) == homomorphism_exists(
            binary_encoding(a), binary_encoding(b)
        )

    @given(structure_pairs(max_elements=3, max_facts=3))
    @settings(max_examples=25, deadline=None)
    def test_chain_equals_full_decision(self, pair):
        a, b = pair
        full = homomorphism_exists(
            binary_encoding(a, "full"), binary_encoding(b, "full")
        )
        chain = homomorphism_exists(
            binary_encoding(a, "chain"), binary_encoding(b, "full")
        )
        assert full == chain
