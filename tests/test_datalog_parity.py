"""Randomized Datalog parity: the legacy evaluator as oracle.

Seeded loops in the style of ``test_kernel_parity.py`` assert that the
compiled bitset Datalog engine (:mod:`repro.kernel.datalogk`) and the
legacy pure-dict evaluator agree — not just on the goal verdict but on
the *exact* IDB fact sets, database for database — across transitive
closures, non-2-colorability, mutual recursion, random generated
programs, and canonical programs ρ_B; and that the Theorem 4.2 decision
route (``canonical_refutes`` via the compiled pebble game) matches both
the materialized-ρ_B evaluation and the reference game on every
instance.  The service's ``submit_datalog`` route is driven against
direct planner solves, coalescing included.

140 seeded instances run through the main parity loop (the acceptance
floor is 120).
"""

from __future__ import annotations

import asyncio
import random

from repro.cq.query import Atom
from repro.datalog.canonical_program import (
    canonical_program,
    canonical_refutes,
)
from repro.datalog.evaluation import evaluate_program, goal_holds
from repro.datalog.program import DatalogProgram, Rule, parse_program
from repro.pebble.game import spoiler_wins
from repro.service import ServiceConfig, SolveService
from repro.structures.graphs import clique
from repro.structures.homomorphism import (
    homomorphism_exists,
    is_homomorphism,
)
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary
from repro.core.pipeline import SolverPipeline

NUM_INSTANCES = 140

TC_PROGRAM = parse_program(
    "T(X, Y) :- E(X, Y)\nT(X, Y) :- T(X, Z), E(Z, Y)", goal="T"
)
NON2COL_PROGRAM = parse_program(
    "P(X, Y) :- E(X, Y)\n"
    "P(X, Y) :- P(X, Z), E(Z, W), E(W, Y)\n"
    "Q() :- P(X, X)",
    goal="Q",
)
EVEN_ODD_PROGRAM = parse_program(
    "Even(X) :- Start(X)\n"
    "Odd(Y) :- Even(X), E(X, Y)\n"
    "Even(Y) :- Odd(X), E(X, Y)",
    goal="Odd",
)


def _random_digraph(rng: random.Random, n: int, extra: Vocabulary | None = None):
    vocabulary = extra if extra is not None else Vocabulary.from_arities({"E": 2})
    edges = {
        (rng.randrange(n), rng.randrange(n))
        for _ in range(rng.randint(n, 3 * n))
    }
    relations: dict = {"E": edges}
    if extra is not None and "Start" in {s.name for s in vocabulary}:
        relations["Start"] = {(rng.randrange(n),)}
    return Structure(vocabulary, range(n), relations)


def _random_program(rng: random.Random) -> DatalogProgram:
    """A seeded valid program (mirrors the conftest strategy's shapes)."""
    arities = {"E0": rng.randint(1, 2)}
    if rng.random() < 0.5:
        arities["E1"] = rng.randint(1, 2)
    idb_names = ["P0"] + (["P1"] if rng.random() < 0.5 else [])
    for name in idb_names:
        arities[name] = rng.randint(0, 2)
    predicates = sorted(arities)
    variables = ["V0", "V1", "V2", "V3"]
    rules = []
    for index in range(rng.randint(1, 3)):
        head_name = idb_names[0] if index == 0 else rng.choice(idb_names)
        head = Atom(
            head_name,
            tuple(
                rng.choice(variables) for _ in range(arities[head_name])
            ),
        )
        body = tuple(
            Atom(
                name,
                tuple(rng.choice(variables) for _ in range(arities[name])),
            )
            for name in (
                rng.choice(predicates) for _ in range(rng.randint(0, 3))
            )
        )
        rules.append(Rule(head, body))
    return DatalogProgram(rules, idb_names[0])


def _random_edb_structure(
    rng: random.Random, program: DatalogProgram
) -> Structure:
    vocabulary = program.edb_vocabulary()
    n = rng.randint(1, 4)
    relations = {}
    for symbol in vocabulary:
        relations[symbol.name] = {
            tuple(rng.randrange(n) for _ in range(symbol.arity))
            for _ in range(rng.randint(0, 6))
        }
    return Structure(vocabulary, range(n), relations)


def _instance(seed: int) -> tuple[str, DatalogProgram, Structure]:
    """One deterministic (label, program, structure) per seed."""
    rng = random.Random(seed)
    shape = seed % 5
    if shape == 0:
        return "tc", TC_PROGRAM, _random_digraph(rng, rng.randint(2, 6))
    if shape == 1:
        return (
            "non2col",
            NON2COL_PROGRAM,
            _random_digraph(rng, rng.randint(2, 6)),
        )
    if shape == 2:
        vocabulary = Vocabulary.from_arities({"Start": 1, "E": 2})
        return (
            "even-odd",
            EVEN_ODD_PROGRAM,
            _random_digraph(rng, rng.randint(2, 5), extra=vocabulary),
        )
    if shape == 3:
        k = rng.choice((1, 2))
        return (
            f"rho-K2-k{k}",
            canonical_program(clique(2), k),
            _random_digraph(rng, rng.randint(2, 5)),
        )
    program = _random_program(rng)
    return "random", program, _random_edb_structure(rng, program)


class TestEvaluationParity:
    def test_exact_database_parity(self):
        """Kernel and legacy produce identical databases on every seed."""
        goal_true = goal_false = 0
        for seed in range(NUM_INSTANCES):
            label, program, structure = _instance(seed)
            legacy = evaluate_program(program, structure, engine="legacy")
            kernel = evaluate_program(program, structure, engine="kernel")
            assert kernel == legacy, f"seed {seed} ({label})"
            naive = evaluate_program(
                program, structure, method="naive", engine="kernel"
            )
            assert naive == legacy, f"seed {seed} ({label}): naive differs"
            decision = goal_holds(program, structure)
            assert decision == bool(legacy[program.goal]), f"seed {seed}"
            if decision:
                goal_true += 1
            else:
                goal_false += 1
        # the stream must exercise both outcomes
        assert goal_true >= 15 and goal_false >= 15


class TestTheoremDecisionParity:
    def test_canonical_refutes_agrees_everywhere(self):
        """pebblek route == materialized ρ_B == reference game, per seed."""
        wins = losses = 0
        for seed in range(0, NUM_INSTANCES, 2):
            rng = random.Random(seed * 17 + 5)
            source = _random_digraph(rng, rng.randint(2, 5))
            target = clique(rng.choice((2, 3)))
            k = rng.choice((1, 2))
            kernel = canonical_refutes(source, target, k)
            legacy = canonical_refutes(source, target, k, engine="legacy")
            assert kernel == legacy, f"seed {seed}"
            assert kernel == spoiler_wins(source, target, k), f"seed {seed}"
            if kernel:
                wins += 1
                # Theorem 4.8, easy direction: a Spoiler win refutes.
                assert not homomorphism_exists(source, target), f"seed {seed}"
            else:
                losses += 1
        assert wins >= 5 and losses >= 5


class TestServiceRouteParity:
    def test_submit_datalog_matches_direct_solve(self):
        """The service datalog route answers like direct planner solves."""
        instances = []
        for seed in range(0, NUM_INSTANCES, 4):
            rng = random.Random(seed * 29 + 11)
            source = _random_digraph(rng, rng.randint(2, 5))
            target = clique(rng.choice((2, 3)))
            instances.append((seed, source, target, 2))

        async def drive():
            config = ServiceConfig(thread_workers=4, process_workers=0)
            async with SolveService(config) as service:
                waiters = [
                    service.submit_datalog(source, target, k=k)
                    for _seed, source, target, k in instances
                ]
                # duplicate resubmissions must coalesce onto the same
                # in-flight computation
                dup_waiters = [
                    service.submit_datalog(source, target, k=k)
                    for _seed, source, target, k in instances[:5]
                ]
                solutions = await asyncio.gather(*waiters)
                duplicates = await asyncio.gather(*dup_waiters)
                return solutions, duplicates, service.stats.snapshot()

        solutions, duplicates, snapshot = asyncio.run(drive())
        pipeline = SolverPipeline()
        for (seed, source, target, k), solution in zip(instances, solutions):
            direct = pipeline.solve(
                source, target, plan=True, try_canonical_datalog=k
            )
            assert solution.exists == direct.exists, f"seed {seed}"
            expected = homomorphism_exists(source, target)
            assert solution.exists == expected, f"seed {seed}"
            if solution.exists:
                assert is_homomorphism(
                    solution.homomorphism, source, target
                ), f"seed {seed}"
        for early, late in zip(solutions[:5], duplicates):
            assert early.exists == late.exists
        assert snapshot["datalog_requests"] == len(instances) + 5
        assert snapshot["routes"]["datalog"]["count"] >= 1
