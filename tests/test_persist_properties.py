"""Property suite: store round-trips preserve results and kernel work.

Every artifact kind is round-tripped through a real on-disk store on
hypothesis-generated inputs, asserting two things:

* **content** — the restored artifact is mathematically identical to
  the original (same supports, same bags, same rules, same canonical
  database);
* **behavior** — a pipeline whose cache reads the restored artifacts
  produces the *identical* :class:`Solution` — same verdict, same
  witness validity — and, once both generations run on warmed caches,
  the identical ``SolveStats.kernel`` counter bag: a decoded artifact
  drives the kernel through exactly the same work as a computed one.
"""

from __future__ import annotations

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import conjunctive_queries, csp_templates, structure_pairs
from repro.core.pipeline import SolverPipeline, StructureCache
from repro.cq.compiled import compile_query
from repro.datalog.canonical_program import canonical_program
from repro.kernel.compile import compile_target
from repro.persist import ArtifactStore, datalog_key
from repro.structures.fingerprint import canonical_fingerprint
from repro.structures.homomorphism import is_homomorphism
from repro.structures.structure import Structure


def _rebuild(structure: Structure) -> Structure:
    """A structurally equal structure with no compile memos attached."""
    return Structure(
        structure.vocabulary,
        structure.sorted_universe,
        {symbol.name: set(rel) for symbol, rel in structure.relations()},
    )


@settings(deadline=None, max_examples=25)
@given(pair=structure_pairs(max_elements=4, max_facts=5))
def test_structure_artifacts_round_trip(pair):
    source, target = pair
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(tmp, register_metrics=False)
        try:
            compiled = compile_target(target)
            fp = canonical_fingerprint(target)
            assert store.put("ctarget", fp, compiled)
            restored = store.get("ctarget", fp)
            assert restored is not None
            assert restored.values == compiled.values
            assert restored.supports == compiled.supports
            assert restored.tuples == compiled.tuples
            assert restored.structure == compiled.structure
        finally:
            store.close()


@settings(deadline=None, max_examples=25)
@given(pair=structure_pairs(max_elements=4, max_facts=5))
def test_solve_parity_and_identical_kernel_counters(pair):
    """Cold-computed vs store-decoded artifacts: same answer, same work."""
    source, target = pair
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(tmp, register_metrics=False)
        try:
            # Generation 1 computes and persists; its *second* solve runs
            # on a fully warmed cache — the pure solving work.
            pipeline_1 = SolverPipeline(cache=StructureCache(store=store))
            first = pipeline_1.solve(source, target)
            warm_1 = pipeline_1.solve(source, target)

            # Generation 2: fresh structures, fresh cache, same store —
            # every structure artifact decodes instead of recompiling.
            source_2, target_2 = _rebuild(source), _rebuild(target)
            pipeline_2 = SolverPipeline(cache=StructureCache(store=store))
            second = pipeline_2.solve(source_2, target_2)
            warm_2 = pipeline_2.solve(source_2, target_2)
        finally:
            store.close()

    assert second.exists == first.exists
    assert second.strategy == first.strategy
    if second.homomorphism is not None:
        assert is_homomorphism(second.homomorphism, source_2, target_2)
    # The decoded generation never compiled a target.
    assert (second.stats.kernel or {}).get("compile.targets", 0) == 0
    # Warm-on-warm: identical kernel counter bags — a decoded artifact
    # is indistinguishable from a computed one to the solving engines.
    assert warm_2.stats.kernel == warm_1.stats.kernel
    assert warm_2.exists == warm_1.exists


@settings(deadline=None, max_examples=25)
@given(query=conjunctive_queries(max_variables=3, max_atoms=3))
def test_query_artifacts_round_trip(query):
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(tmp, register_metrics=False)
        try:
            compiled = compile_query(query)
            canonical = compiled.canonical
            body = compiled.body
            assert store.put("query", compiled.fingerprint, compiled)
            restored = store.get("query", compiled.fingerprint)
            assert restored is not None
            assert restored.fingerprint == compiled.fingerprint
            assert restored.query == query
            assert restored.canonical == canonical
            assert restored.body == body
            # The restored artifact serves as its query's compile memo.
            assert compile_query(restored.query) is restored
        finally:
            store.close()


@settings(deadline=None, max_examples=10)
@given(
    target=csp_templates(max_elements=2, max_arity=2, max_facts=3),
    k=st.integers(min_value=1, max_value=2),
)
def test_datalog_programs_round_trip(target, k):
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(tmp, register_metrics=False)
        try:
            program = canonical_program(target, k)
            key = datalog_key(canonical_fingerprint(target), k)
            assert store.put("datalog", key, program)
            restored = store.get("datalog", key)
            assert restored is not None
            assert restored.rules == program.rules
            assert restored.goal == program.goal
        finally:
            store.close()


@settings(deadline=None, max_examples=25)
@given(pair=structure_pairs(max_elements=4, max_facts=5))
def test_classification_and_decomposition_round_trip(pair):
    source, target = pair
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(tmp, register_metrics=False)
        try:
            cache_1 = StructureCache(store=store)
            decomp = cache_1.decomposition(source)
            fp = canonical_fingerprint(source)
            restored = store.get("decomposition", fp)
            assert restored is not None
            assert restored.bags == decomp.bags
            assert restored.width == decomp.width
            # Boolean targets also persist their Schaefer class.
            if set(target.universe) <= {0, 1} and target.universe:
                classification = cache_1.classification(target)
                stored = store.get(
                    "classification", canonical_fingerprint(target)
                )
                assert stored == classification
        finally:
            store.close()
