#!/usr/bin/env python3
"""Quickstart: the three faces of one problem.

Conjunctive-query containment, conjunctive-query evaluation, and constraint
satisfaction are the same problem — the homomorphism problem (Section 2 of
Kolaitis & Vardi).  This script walks through all three on small inputs.

Run:  python examples/quickstart.py
"""

from repro import (
    HomomorphismProblem,
    contains,
    equivalent,
    evaluate,
    find_homomorphism,
    minimize,
    parse_query,
    solve,
    solve_many,
)
from repro.structures.graphs import clique, cycle, digraph_structure


def containment_demo() -> None:
    print("=== 1. Conjunctive-query containment (Chandra-Merlin) ===")
    q1 = parse_query("Q(X) :- E(X, Y), E(Y, Z).")
    q2 = parse_query("Q(X) :- E(X, Y).")
    print(f"Q1: {q1}")
    print(f"Q2: {q2}")
    print(f"Q1 <= Q2?  {contains(q1, q2)}   (every 2-step start is a 1-step start)")
    print(f"Q2 <= Q1?  {contains(q2, q1)}   (the converse fails)")

    redundant = parse_query("Q(X) :- E(X, Y), E(X, Z), E(X, W).")
    minimal = minimize(redundant)
    print(f"minimize[{redundant}]  ->  {minimal}")
    print(f"equivalent? {equivalent(redundant, minimal)}")
    print()


def evaluation_demo() -> None:
    print("=== 2. Conjunctive-query evaluation ===")
    db = digraph_structure(
        ["ann", "bob", "cal", "dee"],
        [("ann", "bob"), ("bob", "cal"), ("cal", "dee"), ("dee", "bob")],
    )
    q = parse_query("Q(X, Z) :- E(X, Y), E(Y, Z).")
    print(f"query: {q}")
    print("two-step reachability over a tiny 'follows' graph:")
    for row in sorted(evaluate(q, db)):
        print(f"  {row}")
    print()


def csp_demo() -> None:
    print("=== 3. Constraint satisfaction as homomorphism ===")
    c6, c5, k2 = cycle(6), cycle(5), clique(2)
    print("2-coloring = homomorphism into K2:")
    print(f"  C6 -> K2: {find_homomorphism(c6, k2)}")
    print(f"  C5 -> K2: {find_homomorphism(c5, k2)}")
    print()
    print("the pipeline routes each instance to the right algorithm:")
    for source, target in ((c6, k2), (c5, clique(3))):
        solution = solve(source, target)
        print(
            f"  solve(C{len(source)}, K{len(target)}): exists="
            f"{solution.exists} via {solution.strategy}"
        )
    print()
    print("batches against a shared target hit the classification cache:")
    solutions = solve_many([(cycle(n), k2) for n in (4, 5, 6, 7)])
    for n, solution in zip((4, 5, 6, 7), solutions):
        print(
            f"  C{n} -> K2: exists={solution.exists!s:5s} "
            f"via {solution.strategy} "
            f"(cache hits: {solution.stats.cache_hits})"
        )
    print()


def unification_demo() -> None:
    print("=== 4. The three formulations are interchangeable ===")
    problem = HomomorphismProblem(cycle(6), clique(2))
    qb, qa = problem.to_containment()
    print(f"A -> B as containment: Q_B <= Q_A?  {contains(qb, qa)}")
    query, database = problem.to_evaluation()
    print(
        "A -> B as evaluation: Q_A true on B?  "
        f"{bool(evaluate(query, database))}"
    )
    print("A -> B directly:", find_homomorphism(cycle(6), clique(2)) is not None)


if __name__ == "__main__":
    containment_demo()
    evaluation_demo()
    csp_demo()
    unification_demo()
