#!/usr/bin/env python3
"""Constraint satisfaction end to end: map coloring and exam scheduling.

Shows the AI-style CSP interface, its reduction to the homomorphism
problem, the uniform dispatcher picking algorithms, Booleanization into
Schaefer territory, and pebble-game refutation of an unsatisfiable
instance (Sections 2–4 of the paper in one workflow).

Run:  python examples/map_coloring_csp.py
"""

from repro import SolverPipeline, solve
from repro.boolean.booleanize import booleanize
from repro.boolean.schaefer import classify_structure
from repro.boolean.uniform import solve_schaefer_csp
from repro.core.problem import HomomorphismProblem
from repro.csp.instance import Constraint, CSPInstance
from repro.pebble.game import spoiler_wins
from repro.structures.graphs import clique, graph_structure

AUSTRALIA = {
    "WA": ["NT", "SA"],
    "NT": ["SA", "Q"],
    "SA": ["Q", "NSW", "V"],
    "Q": ["NSW"],
    "NSW": ["V"],
    "V": [],
    "T": [],
}


def australia_structure():
    edges = [
        (region, neighbour)
        for region, neighbours in AUSTRALIA.items()
        for neighbour in neighbours
    ]
    return graph_structure(AUSTRALIA.keys(), edges)


def map_coloring() -> None:
    print("=== Map coloring: Australia with 3 colors ===")
    graph = australia_structure()
    solution = solve(graph, clique(3))
    print(f"strategy: {solution.strategy}")
    print(f"routes consulted: {', '.join(solution.stats.attempted)}")
    colors = ["red", "green", "blue"]
    for region in sorted(AUSTRALIA):
        print(f"  {region:4s} -> {colors[solution.homomorphism[region]]}")
    refuted = solve(graph, clique(2))
    print(f"2 colors suffice? {refuted.exists} (via {refuted.strategy})")
    print()


def batch_coloring() -> None:
    print("=== Batch solving on one pipeline (solve_many) ===")
    graph = australia_structure()
    pipeline = SolverPipeline()
    # one decomposition of Australia serves every palette size
    palettes = (2, 3, 4)
    solutions = pipeline.solve_many(
        [(graph, clique(k)) for k in palettes]
    )
    for k, solution in zip(palettes, solutions):
        print(
            f"  {k}-colorable? {solution.exists!s:5s} "
            f"via {solution.strategy} "
            f"(cache hits {solution.stats.cache_hits}, "
            f"misses {solution.stats.cache_misses})"
        )
    stats = pipeline.cache.stats
    print(f"pipeline cache totals: {stats.hits} hits / {stats.misses} misses")
    print()


def exam_scheduling() -> None:
    print("=== Exam scheduling as an AI-style CSP ===")
    # four exams, three slots; students shared between some exams
    conflicts = [("db", "ai"), ("db", "os"), ("ai", "os"), ("os", "ml")]
    slots = {0, 1, 2}
    different = frozenset(
        (a, b) for a in slots for b in slots if a != b
    )
    instance = CSPInstance(
        ["db", "ai", "os", "ml"],
        {exam: set(slots) for exam in ("db", "ai", "os", "ml")},
        [Constraint(pair, different) for pair in conflicts],
    )
    problem = HomomorphismProblem.from_csp(instance)
    solution = solve(problem.source, problem.target)
    print(f"strategy: {solution.strategy}")
    for exam in instance.variables:
        print(f"  exam {exam:3s} -> slot {solution.homomorphism[exam]}")
    print()


def booleanization_pipeline() -> None:
    print("=== Booleanization into Schaefer territory (Lemma 3.5) ===")
    graph = australia_structure()
    bz = booleanize(graph, clique(2))
    classes = classify_structure(bz.target)
    print(f"Booleanized K2 target classes: {classes}")
    hom = solve_schaefer_csp(bz.source, bz.target)
    print(f"2-coloring via the Schaefer route: {'found' if hom else 'none'}")
    print("(mainland Australia is not bipartite, as expected)")
    print()


def pebble_refutation() -> None:
    print("=== Pebble-game refutation (Section 4) ===")
    graph = australia_structure()
    k = 3
    wins = spoiler_wins(graph, clique(2), k)
    print(
        f"Spoiler wins the existential {k}-pebble game on "
        f"(Australia, K2)? {wins}"
    )
    print("-> a Spoiler win certifies: no 2-coloring exists.")


if __name__ == "__main__":
    map_coloring()
    batch_coloring()
    exam_scheduling()
    booleanization_pipeline()
    pebble_refutation()
