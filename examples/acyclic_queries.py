#!/usr/bin/env python3
"""Acyclic queries and the polymorphism lens — the paper's two horizons.

1. The introduction's lineage: Yannakakis' semi-join evaluation of acyclic
   queries (GYO join trees), compared with the general evaluator.
2. The concluding remarks' lineage: tractability via polymorphisms —
   re-deriving Schaefer's classification from the witnessing operations.

Run:  python examples/acyclic_queries.py
"""

from repro.boolean.polymorphisms import (
    AND,
    MAJORITY,
    MINORITY,
    OR,
    is_polymorphism,
    polymorphisms,
    schaefer_classes_from_polymorphisms,
)
from repro.boolean.relations import BooleanRelation
from repro.cq.acyclic import (
    gyo_join_tree,
    is_alpha_acyclic,
    yannakakis_holds,
)
from repro.cq.evaluation import holds
from repro.cq.parser import parse_query
from repro.structures.graphs import random_digraph


def gyo_demo() -> None:
    print("=== GYO ear removal: which queries are acyclic? ===")
    queries = {
        "chain   ": "Q :- E(X, Y), E(Y, Z), E(Z, W).",
        "star    ": "Q :- E(C, X), E(C, Y), E(C, Z).",
        "triangle": "Q :- E(X, Y), E(Y, Z), E(Z, X).",
        "wide    ": "Q :- T(X, Y, Z, W).",
    }
    for name, text in queries.items():
        q = parse_query(text)
        verdict = "acyclic" if is_alpha_acyclic(q) else "CYCLIC"
        print(f"  {name}: {verdict}")
    chain = parse_query(queries["chain   "])
    print(f"  join tree of the chain: {gyo_join_tree(chain)}")
    print()


def yannakakis_demo() -> None:
    print("=== Yannakakis semi-join evaluation vs the general evaluator ===")
    q = parse_query("Q :- E(X, Y), E(Y, Z), E(Z, W).")
    agreements = 0
    for seed in range(10):
        db = random_digraph(6, 0.25, seed=seed)
        fast = yannakakis_holds(q, db)
        slow = holds(q, db)
        assert fast == slow
        agreements += 1
    print(f"  agreed on {agreements} random databases")
    print("  (linear-time semi-joins for the acyclic case — the earliest")
    print("   tractable island the paper's introduction recalls)")
    print()


def polymorphism_demo() -> None:
    print("=== Schaefer's classes through polymorphisms ===")
    relations = {
        "implication {00,01,11}": BooleanRelation(
            2, [(0, 0), (0, 1), (1, 1)]
        ),
        "xor {01,10}           ": BooleanRelation(2, [(0, 1), (1, 0)]),
        "one-in-three          ": BooleanRelation(
            3, [(1, 0, 0), (0, 1, 0), (0, 0, 1)]
        ),
    }
    witnesses = {
        "AND": AND, "OR": OR, "MAJ": MAJORITY, "MIN": MINORITY,
    }
    for name, relation in relations.items():
        preserved = [
            label
            for label, op in witnesses.items()
            if is_polymorphism(op, relation)
        ]
        classes = schaefer_classes_from_polymorphisms(relation)
        print(f"  {name} closed under {preserved or 'nothing'} -> {classes}")
    one_in_three = relations["one-in-three          "]
    binary_polys = list(polymorphisms([one_in_three], 2))
    print(
        "  one-in-three has only the projections as binary polymorphisms "
        f"({len(binary_polys)} found) — the algebraic face of its "
        "NP-completeness"
    )


if __name__ == "__main__":
    gyo_demo()
    yannakakis_demo()
    polymorphism_demo()
