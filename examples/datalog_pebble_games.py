#!/usr/bin/env python3
"""Section 4 live: Datalog, pebble games, and the canonical program ρ_B.

1. Runs the paper's 4-Datalog non-2-colorability program on graphs.
2. Builds the canonical program ρ_{K2} of Theorem 4.7.2 and shows it
   agrees with the direct existential-pebble-game solver.
3. Demonstrates Theorem 4.9's uniform algorithm: k-consistency decides
   CSP instances whose target's complement-CSP is k-Datalog expressible.

Run:  python examples/datalog_pebble_games.py
"""

from repro.datalog.canonical_program import canonical_program
from repro.datalog.evaluation import evaluate_program, goal_holds
from repro.datalog.program import parse_program
from repro.pebble.game import duplicator_wins, spoiler_wins
from repro.pebble.kconsistency import strong_k_consistent
from repro.structures.graphs import clique, cycle, random_graph
from repro.structures.homomorphism import homomorphism_exists

NON_2_COLORABILITY = """
# the paper's Section 4.1 example: a cycle of odd length exists
P(X, Y) :- E(X, Y)
P(X, Y) :- P(X, Z), E(Z, W), E(W, Y)
Q() :- P(X, X)
"""


def run_paper_program() -> None:
    print("=== The paper's 4-Datalog non-2-colorability program ===")
    program = parse_program(NON_2_COLORABILITY, goal="Q")
    print(program)
    print(f"k-Datalog membership: k = {program.max_distinct_variables()}")
    for n in range(3, 9):
        result = goal_holds(program, cycle(n))
        print(f"  C{n}: non-2-colorable? {result}")
    print()


def inspect_fixpoint() -> None:
    print("=== Bottom-up (semi-naive) fixpoint on C5 ===")
    program = parse_program(NON_2_COLORABILITY, goal="Q")
    relations = evaluate_program(program, cycle(5))
    odd_walks = relations["P"]
    print(f"|P| (odd-length walk pairs) = {len(odd_walks)}")
    print(f"goal Q derived: {bool(relations['Q'])}")
    print()


def canonical_program_demo() -> None:
    print("=== The canonical program rho_B (Theorem 4.7.2) ===")
    k2 = clique(2)
    for k in (2, 3):
        rho = canonical_program(k2, k)
        print(
            f"rho_(K2, k={k}): {len(rho)} rules, "
            f"{len(rho.idb_predicates)} IDB predicates"
        )
        agreements = 0
        for seed in range(6):
            g = random_graph(5, 0.4, seed=seed)
            datalog_says = goal_holds(rho, g)
            game_says = spoiler_wins(g, k2, k)
            assert datalog_says == game_says
            agreements += 1
        print(f"  agrees with the pebble-game solver on {agreements} graphs")
    print()


def uniform_algorithm_demo() -> None:
    print("=== Theorem 4.9: k-consistency as a uniform CSP algorithm ===")
    k2 = clique(2)
    print("2-colorability (cCSP(K2) is Datalog-expressible), k = 3:")
    for seed in range(6):
        g = random_graph(6, 0.35, seed=seed)
        consistent = strong_k_consistent(g, k2, 3)
        actual = homomorphism_exists(g, k2)
        marker = "SAT" if actual else "UNSAT"
        print(
            f"  seed {seed}: k-consistency says "
            f"{'maybe-SAT' if consistent else 'UNSAT'}; truth: {marker}"
        )
        assert consistent == actual  # exact for this target
    print()
    print("K4 -> K3 needs k = 4 for refutation (3-consistency is blind):")
    print(f"  duplicator wins k=3 game: {duplicator_wins(clique(4), clique(3), 3)}")
    print(f"  spoiler wins    k=4 game: {spoiler_wins(clique(4), clique(3), 4)}")


if __name__ == "__main__":
    run_paper_program()
    inspect_fixpoint()
    canonical_program_demo()
    uniform_algorithm_demo()
