#!/usr/bin/env python3
"""Query optimization with containment: the database-side motivation.

The paper's introduction recalls why containment matters to databases:
query minimization removes redundant joins, and answering-queries-using-
views reduces to containment/equivalence tests.  This example plays both
scenarios on a small star-schema-ish workload, and shows Saraiya's
polynomial two-atom fast path (Proposition 3.6) agreeing with the general
NP test.

Run:  python examples/query_optimization.py
"""

import time

from repro import contains, equivalent, evaluate, minimize, parse_query
from repro.cq.saraiya import is_two_atom_instance, two_atom_contains
from repro.structures.structure import Structure
from repro.structures.vocabulary import Vocabulary


def sample_database() -> Structure:
    """orders(cust, item), item_info(item, cat), vip(cust)."""
    vocabulary = Vocabulary.from_arities(
        {"Orders": 2, "ItemCat": 2, "Vip": 1}
    )
    return Structure(
        vocabulary,
        (),
        {
            "Orders": {
                ("ann", "laptop"), ("ann", "mouse"),
                ("bob", "mouse"), ("cal", "desk"),
            },
            "ItemCat": {
                ("laptop", "tech"), ("mouse", "tech"), ("desk", "office"),
            },
            "Vip": {("ann",), ("cal",)},
        },
    )


def join_elimination() -> None:
    print("=== Redundant-join elimination (minimization) ===")
    # The generated query joins Orders twice for no reason.
    q = parse_query(
        "Q(C) :- Orders(C, I), ItemCat(I, K), Orders(C, J), Vip(C)."
    )
    m = minimize(q)
    print(f"original : {q}   ({len(q)} joins)")
    print(f"minimized: {m}   ({len(m)} joins)")
    db = sample_database()
    assert evaluate(q, db) == evaluate(m, db)
    print(f"answers unchanged: {sorted(evaluate(m, db))}")
    print()


def view_reuse() -> None:
    print("=== Answering queries using views (equivalence tests) ===")
    view = parse_query("V(C, K) :- Orders(C, I), ItemCat(I, K).")
    query = parse_query(
        "Q(C, K) :- Orders(C, I), ItemCat(I, K), Orders(C, J), ItemCat(J, K)."
    )
    print(f"materialized view: {view}")
    print(f"incoming query   : {query}")
    if equivalent(query, view):
        print("-> query is equivalent to the view: answer straight from it")
    db = sample_database()
    assert evaluate(query, db) == evaluate(view, db)
    print(f"   shared answers: {sorted(evaluate(view, db))}")
    print()


def containment_hierarchy() -> None:
    print("=== A containment hierarchy of access-control queries ===")
    queries = {
        "all orders       ": parse_query("Q(C) :- Orders(C, I)."),
        "tech orders      ": parse_query(
            "Q(C) :- Orders(C, I), ItemCat(I, tech_k)."
        ),
        "vip tech orders  ": parse_query(
            "Q(C) :- Orders(C, I), ItemCat(I, tech_k), Vip(C)."
        ),
    }
    names = list(queries)
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            if contains(queries[b], queries[a]):
                print(f"  [{b.strip()}]  <=  [{a.strip()}]")
    print()


def saraiya_fast_path() -> None:
    print("=== Saraiya's two-atom fast path (Proposition 3.6) ===")
    from repro.csp.generators import random_two_atom_query

    agree, start = 0, time.perf_counter()
    for seed in range(30):
        q1 = random_two_atom_query(3, 5, seed=seed)
        q2 = random_two_atom_query(3, 5, seed=seed + 500)
        assert is_two_atom_instance(q1)
        fast = two_atom_contains(q1, q2)
        slow = contains(q1, q2)
        assert fast == slow
        agree += 1
    elapsed = time.perf_counter() - start
    print(
        f"polynomial route agreed with the general NP route on {agree} "
        f"random instances ({elapsed:.2f}s)"
    )


if __name__ == "__main__":
    join_elimination()
    view_reuse()
    containment_hierarchy()
    saraiya_fast_path()
