#!/usr/bin/env python3
"""Section 5 live: treewidth, ∃FO^{k+1}, and the dual-graph encoding.

1. Decomposes structures with the elimination heuristics and certifies
   widths with the exact solver.
2. Solves bounded-treewidth CSPs by the Theorem 5.4 dynamic program.
3. Prints the ∃FO^{k+1} sentence of Lemma 5.2 for a small query and
   evaluates it (the paper's "new proof" route).
4. Shows binary(A) (Lemma 5.5) preserving homomorphism existence.

Run:  python examples/treewidth_pipeline.py
"""

from repro.core.pipeline import SolverPipeline
from repro.csp.generators import bounded_treewidth_structure
from repro.fo.from_decomposition import (
    homomorphism_exists_by_fo,
    structure_to_formula,
)
from repro.fo.syntax import num_slots
from repro.structures.binary_encoding import binary_encoding
from repro.structures.graphs import clique, cycle, path
from repro.structures.homomorphism import homomorphism_exists
from repro.treewidth.decomposition import TreeDecomposition
from repro.treewidth.dp import solve_by_treewidth
from repro.treewidth.exact import exact_treewidth
from repro.treewidth.heuristics import decompose


def decomposition_demo() -> None:
    print("=== Tree decompositions (Lemma 5.1) ===")
    for name, structure in (
        ("P8 (path)", path(8)),
        ("C8 (cycle)", cycle(8)),
        ("K5 (clique)", clique(5)),
    ):
        decomposition = decompose(structure)
        exact = exact_treewidth(structure)
        print(
            f"  {name:11s}: heuristic width {decomposition.width}, "
            f"exact treewidth {exact}, {len(decomposition)} bags"
        )
    print()


def dp_demo() -> None:
    print("=== Theorem 5.4: the bounded-treewidth homomorphism DP ===")
    structure, bags, tree_edges = bounded_treewidth_structure(
        14, 2, seed=7
    )
    decomposition = TreeDecomposition(bags, tree_edges)
    print(
        f"random width-2 structure: {len(structure)} elements, "
        f"{structure.num_facts} facts, {len(bags)} bags"
    )
    for colors in (2, 3, 4):
        hom = solve_by_treewidth(structure, clique(colors), decomposition)
        print(f"  {colors}-colorable? {hom is not None}")
    print()


def pipeline_demo() -> None:
    print("=== The solver pipeline routes low-width sources to the DP ===")
    structure, _, _ = bounded_treewidth_structure(14, 2, seed=7)
    pipeline = SolverPipeline()
    solutions = pipeline.solve_many(
        [(structure, clique(colors)) for colors in (3, 4)]
    )
    for colors, solution in zip((3, 4), solutions):
        print(
            f"  {colors}-colorable? {solution.exists!s:5s} "
            f"via {solution.strategy} "
            f"(decomposition cache hits: {solution.stats.cache_hits})"
        )
    print("(the source is decomposed once; later solves reuse it)")
    print()


def fo_demo() -> None:
    print("=== Lemma 5.2: width-k structures as EFO^(k+1) sentences ===")
    structure = path(5)
    decomposition = decompose(structure)
    formula = structure_to_formula(structure, decomposition)
    print(f"P5 (treewidth {decomposition.width}) becomes:")
    print(f"  {formula}")
    print(f"  distinct variables used: {num_slots(formula)}")
    print(f"  holds on K2 (P5 2-colorable)?  "
          f"{homomorphism_exists_by_fo(structure, clique(2))}")
    odd = cycle(5)
    print(f"  C5 sentence on K2 (odd cycle)? "
          f"{homomorphism_exists_by_fo(odd, clique(2))}")
    print()


def binary_encoding_demo() -> None:
    print("=== Lemma 5.5: the dual-graph binary encoding ===")
    for n in (4, 5, 6):
        a, b = cycle(n), clique(2)
        direct = homomorphism_exists(a, b)
        encoded = homomorphism_exists(
            binary_encoding(a), binary_encoding(b)
        )
        print(
            f"  C{n} -> K2: direct {direct}, via binary(A)/binary(B) "
            f"{encoded}"
        )
        assert direct == encoded
    enc = binary_encoding(cycle(5))
    print(
        f"  binary(C5): {len(enc)} tuple-nodes over "
        f"{len(enc.vocabulary)} coincidence relations"
    )


if __name__ == "__main__":
    decomposition_demo()
    dp_demo()
    pipeline_demo()
    fo_demo()
    binary_encoding_demo()
